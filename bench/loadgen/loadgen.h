// Open-loop, coordinated-omission-safe load generator.
//
// A closed-loop bench (issue request, wait, issue next) measures *service
// time*: when the system stalls, the bench politely stops offering load, so
// the stall is charged to one unlucky request and the tail looks clean —
// the coordinated-omission trap. This harness is open-loop: an arrival
// schedule (fixed-rate or Poisson) decides when each logical client's
// request *should* start, independent of how the system is doing, and every
// latency is measured from that intended start time. A 200 ms server stall
// at 1000 arrivals/s therefore shows up as ~200 queued arrivals whose
// latencies decay from 200 ms to 0 — the exact experience of open traffic —
// instead of a single slow sample.
//
// Many logical clients are multiplexed over few OS threads/connections
// (thread t runs arrival indices i ≡ t mod threads on one Memo handle), so
// a 4-thread run models thousands of independent clients without thousands
// of sockets — the multiplexing the ROADMAP's async-client item will widen.
//
// Results carry both views: p50/p90/p99/p999/max from intended start, plus
// the service-time p99/max a closed-loop bench would have reported. The gap
// is the omission. Percentiles come from the shared metrics-histogram
// bucket math (util/metrics.h HistogramPercentile); max is exact.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "core/memo.h"
#include "loadgen/report.h"
#include "util/rng.h"

namespace dmemo::bench {

enum class Arrival { kFixedRate, kPoisson };

struct OpenLoopOptions {
  double rate = 1000.0;  // offered arrivals/sec across all threads
  Arrival arrival = Arrival::kPoisson;
  std::size_t clients = 256;  // logical clients (key-space identities)
  std::size_t threads = 4;    // OS threads multiplexing them
  std::chrono::milliseconds duration{1000};
  std::uint64_t seed = 1;
};

struct OpenLoopResult {
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  double duration_s = 0;
  double offered_rate = 0;
  double achieved_rate = 0;
  // Latency from intended start, µs.
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  // Service time (actual start → completion) of the same ops.
  std::uint64_t service_p50_us = 0;
  std::uint64_t service_p99_us = 0;
  std::uint64_t service_max_us = 0;
};

// One request: `thread` is the OS-thread slot (pick your Memo handle),
// `client` the logical client identity, `rng` a per-thread deterministic
// stream. Returns false to count the op as an error.
using LoadOp =
    std::function<bool(std::size_t thread, std::size_t client,
                       SplitMix64& rng)>;

// Runs `op` under the open-loop schedule. Blocks until the run drains
// (every scheduled arrival executes, even if the run overshoots its
// duration — dropping the backlog would be omission by another name).
//
// Rate accounting: each thread's arrival count is capped at its share of
// rate × duration, and achieved_rate is computed against the schedule
// horizon (not the measured wall clock), so achieved ≤ offered within
// rounding. Without the cap, a stalled run that catches up by firing its
// backlog as a burst — or a Poisson stream that drew a few extra arrivals —
// reports more throughput than was ever offered.
OpenLoopResult RunOpenLoop(const OpenLoopOptions& options, const LoadOp& op);

// A pending async op. `poll` answers, without blocking, whether the op has
// completed; `take` blocks until completion and returns its success. The
// runner calls take exactly once per op — after poll says ready, or when
// draining a full window / the end of the run.
struct PendingOp {
  std::function<bool()> poll;
  std::function<bool()> take;
};
// Wraps the Memo async futures into a pollable PendingOp.
PendingOp PendingFromStatus(std::future<Status> f);
PendingOp PendingFromValue(std::future<Result<TransferablePtr>> f);

// Async variant of LoadOp: issues the op and returns a handle the runner
// polls. The runner neither waits for nor orders completions at issue time —
// that is the point: the pipelined client keeps issuing while responses are
// in flight.
using AsyncLoadOp =
    std::function<PendingOp(std::size_t thread, std::size_t client,
                            SplitMix64& rng)>;

// RunOpenLoop for the pipelined client: the same arrival schedule and rate
// accounting, but each arrival issues `op` without waiting — up to
// `max_inflight` per thread ride the connection at once (the window blocks
// the schedule when full, which shows up as intended-start latency, exactly
// like any other backpressure). Completions are harvested by polling at the
// next arrival (or at window-full), so a completion is stamped up to one
// inter-arrival gap late — fine for p99 gating at smoke rates, stated here
// so nobody reads µs-exact service times out of the async phases.
//
// `flush` is the pipelining hint (Memo::flush): invoked with the thread
// slot right before the runner blocks on a not-yet-ready completion, so a
// partial batch is pushed out instead of riding the formation delay timer.
using FlushHint = std::function<void(std::size_t thread)>;
OpenLoopResult RunOpenLoopAsync(const OpenLoopOptions& options,
                                const AsyncLoadOp& op,
                                std::size_t max_inflight = 256,
                                const FlushHint& flush = nullptr);

// ---- workloads over the Memo API ----

struct WorkloadOptions {
  double put_ratio = 0.5;        // put_get: deposit fraction; job_jar:
                                 // producer fraction
  std::size_t payload_bytes = 64;
  std::size_t folders = 128;     // put_get key-space width
  int fanout = 4;                // fanout: reads per publish (expected)
  std::size_t topics = 16;       // fanout: topic folder count
};

// Mixed deposit/extract traffic over a wide folder key space.
LoadOp MakePutGetOp(std::vector<Memo>& handles, const WorkloadOptions& wl);
// Pipelined put_get: deposits via put_async; the extract fraction pairs a
// deposit with its get_async so every extraction has a value issued ahead
// of it — a bare blocking get could park the pipeline past the drain.
AsyncLoadOp MakePutGetAsyncOp(std::vector<Memo>& handles,
                              const WorkloadOptions& wl);
// Pub/sub fan-out: occasional publishes into few topic folders, many
// concurrent get_copy readers per publish. Call PreloadFanOut first so no
// reader parks on an empty topic.
LoadOp MakeFanOutOp(std::vector<Memo>& handles, const WorkloadOptions& wl);
Status PreloadFanOut(Memo& memo, const WorkloadOptions& wl);
// Job-jar: producers deposit jobs into one contended jar folder, workers
// take one (get_skip) and deposit a result.
LoadOp MakeJobJarOp(std::vector<Memo>& handles, const WorkloadOptions& wl);

// Converts a runner result into a report phase.
BenchPhaseResult PhaseFromResult(const std::string& name,
                                 const std::string& workload,
                                 const OpenLoopResult& result);

}  // namespace dmemo::bench
