// E12 — Section 4.2: grain size.
//
// "Applications that use a small grain size distribution of work will have
// to consider the effects of overhead spent on communicating, versus
// getting work done. If the grain size is too large, parallelism will have
// been lost."
//
// A fixed total amount of compute is split into tasks of varying grain and
// run through the full remote path (client -> memo server -> folder server)
// with 4 workers. Shape expected: a hump — tiny grains drown in
// communication, huge grains leave workers idle; the optimum is interior.
#include <thread>

#include "bench_common.h"
#include "patterns/job_jar.h"

namespace dmemo::bench {
namespace {

// ~40 us of compute per unit on a modern core.
double ComputeUnits(long units) {
  double x = 1.0001;
  for (long i = 0; i < units * 20'000; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

constexpr long kTotalUnits = 1024;  // total work, fixed across grains
constexpr int kWorkers = 4;

void GrainSweep(benchmark::State& state) {
  const long grain = state.range(0);  // units per task
  const long tasks = kTotalUnits / grain;
  auto cluster = ClusterOrDie(OneHostAdf("grain"));
  for (auto _ : state) {
    Memo boss = ClientOrDie(*cluster, "hostA");
    Key jar = Key::Named("jar");
    Key done = Key::Named("done");
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&cluster, grain] {
        Memo memo = ClientOrDie(*cluster, "hostA");
        Key jar_key = Key::Named("jar");
        Key done_key = Key::Named("done");
        double sink = 0;
        for (;;) {
          auto task = memo.get(jar_key);
          if (!task.ok() || *task == nullptr) break;
          sink += ComputeUnits(grain);
          (void)memo.put(done_key, MakeInt32(1));
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    for (long t = 0; t < tasks; ++t) (void)boss.put(jar, MakeInt32(1));
    for (long t = 0; t < tasks; ++t) (void)boss.get(done);
    for (int w = 0; w < kWorkers; ++w) (void)boss.put(jar, nullptr);
    for (auto& t : workers) t.join();
  }
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["units_per_task"] = static_cast<double>(grain);
  state.SetItemsProcessed(state.iterations() * kTotalUnits);
  state.SetLabel("grain=" + std::to_string(grain) + " units x " +
                 std::to_string(tasks) + " tasks");
}
// From 1 unit x 1024 tasks (communication-bound) to 512 units x 2 tasks
// (parallelism lost: only 2 of 4 workers have anything to do).
BENCHMARK(GrainSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
