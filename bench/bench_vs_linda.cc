// E9 — Section 7 vs Linda.
//
// "We believe that this tuple space is just 'a flat directory of unordered
// queues'. Using this approach, we are able to provide better programming
// abstractions then Linda."
//
// Mechanism comparison: D-Memo retrieves by hashing an exact folder key;
// Linda retrieves by structurally matching an anti-tuple against stored
// tuples. As the space fills with non-matching tuples, the naive Linda scan
// degrades linearly; the indexed variant (classic first-field optimization)
// survives only while the first field is an actual; D-Memo's key hash is
// flat throughout.
//
// Shape expected: D-Memo <= indexed Linda << naive Linda as the space
// grows; no crossover where Linda wins.
#include "baselines/linda.h"
#include "bench_common.h"

namespace dmemo::bench {
namespace {

namespace li = dmemo::linda;

// Retrieval with `distractors` unrelated items resident in the space.
void DMemoRetrieval(benchmark::State& state) {
  const std::uint32_t distractors =
      static_cast<std::uint32_t>(state.range(0));
  auto space = std::make_shared<LocalSpace>("vslinda");
  Memo memo = Memo::Local(space);
  for (std::uint32_t i = 0; i < distractors; ++i) {
    (void)memo.put(Key::Named("other", {i}), MakeInt32(1));
  }
  Key target = Key::Named("needle");
  for (auto _ : state) {
    (void)memo.put(target, MakeInt32(42));
    benchmark::DoNotOptimize(memo.get(target));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("dmemo, " + std::to_string(distractors) + " resident");
}
BENCHMARK(DMemoRetrieval)->Arg(0)->Arg(1000)->Arg(10000);

void LindaRetrieval(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  const std::int64_t distractors = state.range(1);
  li::TupleSpace space(indexed);
  for (std::int64_t i = 0; i < distractors; ++i) {
    (void)space.Out({li::Value(std::string("other") + std::to_string(i)),
                     li::Value(i)});
  }
  for (auto _ : state) {
    (void)space.Out(
        {li::Value(std::string("needle")), li::Value(std::int64_t{42})});
    benchmark::DoNotOptimize(space.In({li::V("needle"), li::FInt()}));
  }
  state.counters["tuples_scanned_total"] =
      static_cast<double>(space.tuples_scanned());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(indexed ? "linda-indexed" : "linda-naive") +
                 ", " + std::to_string(distractors) + " resident");
}
BENCHMARK(LindaRetrieval)
    ->ArgsProduct({{0, 1}, {0, 1000, 10000}});

// Formal-first-field retrieval defeats the index: this is where even
// optimized Linda pays for associative matching and D-Memo's exact keys
// (by construction) cannot express the query at all — the abstraction gap
// the paper trades away as a "feature of dubious value".
void LindaFormalFirstField(benchmark::State& state) {
  const std::int64_t distractors = state.range(0);
  li::TupleSpace space(/*indexed=*/true);
  for (std::int64_t i = 0; i < distractors; ++i) {
    (void)space.Out({li::Value(i), li::Value(std::string("payload"))});
  }
  for (auto _ : state) {
    (void)space.Out({li::Value(std::int64_t{-1}),
                     li::Value(std::string("needle-payload")),
                     li::Value(std::int64_t{1})});
    benchmark::DoNotOptimize(
        space.In({li::FInt(), li::FString(), li::FInt()}));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("linda-indexed, formal 1st field, " +
                 std::to_string(distractors) + " resident");
}
BENCHMARK(LindaFormalFirstField)->Arg(1000)->Arg(10000);

// The job-jar workload expressed in both systems (the paper's claimed
// better abstraction): producers drop tasks, consumers take them.
void JobJarDMemo(benchmark::State& state) {
  auto space = std::make_shared<LocalSpace>("jarsd");
  Memo memo = Memo::Local(space);
  Key jar = Key::Named("jar");
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) (void)memo.put(jar, MakeInt32(i));
    for (int i = 0; i < 100; ++i) benchmark::DoNotOptimize(memo.get(jar));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(JobJarDMemo);

void JobJarLinda(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  li::TupleSpace space(indexed);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < 100; ++i) {
      (void)space.Out({li::Value(std::string("task")), li::Value(i)});
    }
    for (int i = 0; i < 100; ++i) {
      benchmark::DoNotOptimize(space.In({li::V("task"), li::FInt()}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.SetLabel(indexed ? "linda-indexed" : "linda-naive");
}
BENCHMARK(JobJarLinda)->Arg(0)->Arg(1);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
