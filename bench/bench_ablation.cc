// Ablations for the design choices DESIGN.md calls out.
//
// A1 — weighted rendezvous hashing (chosen) vs modulo hashing (the naive
//      alternative): modulo cannot express processor-cost weights, and
//      adding one folder server remaps nearly every key, while rendezvous
//      moves only ~1/(n+1) of them. Both matter for Sec. 5's policy and
//      for re-registering an application with a grown FOLDERS section.
//
// A2 — the directory's single mutex: throughput of put/get pairs as client
//      thread count grows, on one folder vs spread folders. Documents where
//      the simple-lock choice stops scaling (and that folder spreading, the
//      deployment the paper prescribes, recovers it).
//
// A3 — unordered (swap-random) extraction vs what FIFO would cost:
//      extraction strategy is not the bottleneck; the semantics are free.
#include <thread>

#include "bench_common.h"
#include "folder/directory.h"
#include "routing/routing.h"

namespace dmemo::bench {
namespace {

AppDescription EqualHostsAdf(int servers) {
  std::string text = "APP ab\nHOSTS\n";
  for (int i = 0; i < servers; ++i) {
    text += "h" + std::to_string(i) + " 1 t 1\n";
  }
  text += "FOLDERS\n";
  for (int i = 0; i < servers; ++i) {
    text += std::to_string(i) + " h" + std::to_string(i) + "\n";
  }
  text += "PPC\n";
  for (int i = 1; i < servers; ++i) {
    text += "h0 <-> h" + std::to_string(i) + " 1\n";
  }
  return AdfOrDie(text);
}

// A1a: keys remapped when the server count grows n -> n+1.
void RemapOnGrowth(benchmark::State& state) {
  const bool rendezvous = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  auto before = RoutingTable::Build(EqualHostsAdf(n));
  auto after = RoutingTable::Build(EqualHostsAdf(n + 1));
  if (!before.ok() || !after.ok()) throw std::runtime_error("routing");
  constexpr int kKeys = 50'000;
  int moved = 0;
  for (auto _ : state) {
    moved = 0;
    for (std::uint32_t i = 0; i < kKeys; ++i) {
      QualifiedKey qk{"ab", Key::Named("k", {i})};
      int owner_before, owner_after;
      if (rendezvous) {
        owner_before = before->ServerForKey(qk.ToBytes())->id;
        owner_after = after->ServerForKey(qk.ToBytes())->id;
      } else {
        const std::uint64_t h = Fnv1a64(qk.ToBytes());
        owner_before = static_cast<int>(h % n);
        owner_after = static_cast<int>(h % (n + 1));
      }
      if (owner_before != owner_after) ++moved;
    }
    benchmark::DoNotOptimize(moved);
  }
  state.counters["remapped_fraction"] =
      static_cast<double>(moved) / kKeys;
  state.counters["ideal_fraction"] = 1.0 / (n + 1);
  state.SetItemsProcessed(state.iterations() * kKeys);
  state.SetLabel(std::string(rendezvous ? "rendezvous" : "modulo") + ", " +
                 std::to_string(n) + "->" + std::to_string(n + 1) +
                 " servers");
}
BENCHMARK(RemapOnGrowth)->ArgsProduct({{0, 1}, {4, 8}});

// A1b: selection cost per key (rendezvous is O(servers); modulo O(1)) —
// the price paid for weighting and minimal disruption.
void SelectionCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto table = RoutingTable::Build(EqualHostsAdf(n));
  if (!table.ok()) throw std::runtime_error("routing");
  std::uint32_t i = 0;
  for (auto _ : state) {
    QualifiedKey qk{"ab", Key::Named("k", {i++})};
    benchmark::DoNotOptimize(table->ServerForKey(qk.ToBytes()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("rendezvous over " + std::to_string(n) + " servers");
}
BENCHMARK(SelectionCost)->Arg(2)->Arg(8)->Arg(32);

// A2: directory throughput under contention.
void DirectoryContention(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool spread = state.range(1) != 0;
  for (auto _ : state) {
    FolderDirectory<Bytes> dir;
    constexpr int kOpsPerThread = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&dir, t, spread] {
        const QualifiedKey qk{
            "ab", Key::Named("f", {spread ? static_cast<std::uint32_t>(t)
                                          : 0u})};
        for (int i = 0; i < kOpsPerThread; ++i) {
          (void)dir.Put(qk, Bytes{1});
          (void)dir.GetSkip(qk);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * 4000);
  state.SetLabel(std::to_string(threads) + " threads, " +
                 (spread ? "spread folders" : "one folder"));
}
BENCHMARK(DirectoryContention)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A3: extraction-order strategies. The directory's pseudorandom
// swap-removal vs the FIFO a std::deque would give, measured standalone.
void ExtractionSwapRandom(benchmark::State& state) {
  FolderDirectory<Bytes> dir;
  const QualifiedKey qk{"ab", Key::Named("f")};
  for (int i = 0; i < 1024; ++i) (void)dir.Put(qk, Bytes{1});
  for (auto _ : state) {
    (void)dir.Put(qk, Bytes{1});
    benchmark::DoNotOptimize(dir.GetSkip(qk));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("swap-random over 1024 resident");
}
BENCHMARK(ExtractionSwapRandom);

void ExtractionFifoBaseline(benchmark::State& state) {
  std::deque<Bytes> fifo(1024, Bytes{1});
  for (auto _ : state) {
    fifo.push_back(Bytes{1});
    Bytes front = std::move(fifo.front());
    fifo.pop_front();
    benchmark::DoNotOptimize(front);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("raw FIFO deque over 1024 resident");
}
BENCHMARK(ExtractionFifoBaseline);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
