// E13 — worker scaling (the Eq.-1 context: throwing more commodity
// processors at the job).
//
// A fixed batch of medium-grain tasks drained from a job jar by 1..16
// workers through the full remote path. Shape expected: near-linear speedup
// until the host's core count, flat (or slightly degrading) after.
#include <thread>

#include "bench_common.h"
#include "patterns/job_jar.h"

namespace dmemo::bench {
namespace {

double ComputeUnits(long units) {
  double x = 1.0001;
  for (long i = 0; i < units * 20'000; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

constexpr int kTasks = 128;
constexpr long kUnitsPerTask = 16;  // ~0.6 ms each

void WorkerScaling(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  auto cluster = ClusterOrDie(OneHostAdf("scaling"));
  for (auto _ : state) {
    Memo boss = ClientOrDie(*cluster, "hostA");
    Key jar = Key::Named("jar");
    Key done = Key::Named("done");
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&cluster] {
        Memo memo = ClientOrDie(*cluster, "hostA");
        Key jar_key = Key::Named("jar");
        Key done_key = Key::Named("done");
        double sink = 0;
        for (;;) {
          auto task = memo.get(jar_key);
          if (!task.ok() || *task == nullptr) break;
          sink += ComputeUnits(kUnitsPerTask);
          (void)memo.put(done_key, MakeInt32(1));
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    for (int t = 0; t < kTasks; ++t) (void)boss.put(jar, MakeInt32(1));
    for (int t = 0; t < kTasks; ++t) (void)boss.get(done);
    for (int w = 0; w < workers; ++w) (void)boss.put(jar, nullptr);
    for (auto& t : pool) t.join();
  }
  state.counters["workers"] = workers;
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.SetLabel(std::to_string(workers) + " workers");
}
BENCHMARK(WorkerScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.2);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
