// Shared helpers for the experiment benches (see DESIGN.md Sec. 4 for the
// experiment index E1..E14).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "runtime/cluster.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

namespace dmemo::bench {

inline AppDescription AdfOrDie(const std::string& text) {
  auto parsed = ParseAdf(text);
  if (!parsed.ok()) {
    throw std::runtime_error("bad bench ADF: " + parsed.status().ToString());
  }
  return parsed->description;
}

// A two-machine ADF with one folder server each and a unit link.
inline AppDescription TwoHostAdf(const std::string& app) {
  return AdfOrDie("APP " + app +
                  "\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
                  "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
}

// A single-machine ADF (all folders local).
inline AppDescription OneHostAdf(const std::string& app) {
  return AdfOrDie("APP " + app +
                  "\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
}

inline std::unique_ptr<Cluster> ClusterOrDie(const AppDescription& adf) {
  auto cluster = Cluster::Start(adf);
  if (!cluster.ok()) {
    throw std::runtime_error("cluster: " + cluster.status().ToString());
  }
  return std::move(*cluster);
}

inline Memo ClientOrDie(Cluster& cluster, const std::string& host) {
  auto memo = cluster.Client(host, MachineProfile::Universal());
  if (!memo.ok()) {
    throw std::runtime_error("client: " + memo.status().ToString());
  }
  return std::move(*memo);
}

// A payload of `bytes` for put/get traffic.
inline TransferablePtr Payload(std::size_t bytes) {
  return MakeBytes(Bytes(bytes, 0x5a));
}

}  // namespace dmemo::bench
