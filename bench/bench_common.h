// Shared helpers for the experiment benches (see DESIGN.md Sec. 4 for the
// experiment index E1..E14).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "loadgen/report.h"
#include "runtime/cluster.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

namespace dmemo::bench {

inline AppDescription AdfOrDie(const std::string& text) {
  auto parsed = ParseAdf(text);
  if (!parsed.ok()) {
    throw std::runtime_error("bad bench ADF: " + parsed.status().ToString());
  }
  return parsed->description;
}

// A two-machine ADF with one folder server each and a unit link.
inline AppDescription TwoHostAdf(const std::string& app) {
  return AdfOrDie("APP " + app +
                  "\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
                  "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
}

// A single-machine ADF (all folders local).
inline AppDescription OneHostAdf(const std::string& app) {
  return AdfOrDie("APP " + app +
                  "\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
}

inline std::unique_ptr<Cluster> ClusterOrDie(const AppDescription& adf) {
  auto cluster = Cluster::Start(adf);
  if (!cluster.ok()) {
    throw std::runtime_error("cluster: " + cluster.status().ToString());
  }
  return std::move(*cluster);
}

inline Memo ClientOrDie(Cluster& cluster, const std::string& host) {
  auto memo = cluster.Client(host, MachineProfile::Universal());
  if (!memo.ok()) {
    throw std::runtime_error("client: " + memo.status().ToString());
  }
  return std::move(*memo);
}

// A payload of `bytes` for put/get traffic.
inline TransferablePtr Payload(std::size_t bytes) {
  return MakeBytes(Bytes(bytes, 0x5a));
}

// Console reporter that additionally accumulates every iteration run as a
// BenchPhaseResult, so closed-loop google-benchmark binaries feed the same
// BENCH_*.json trajectory as the open-loop harness (bench/loadgen/report.h).
// Closed-loop runs have no arrival schedule to be late against, so the
// intended-start latency fields stay zero; per-iteration time and user
// counters (items_per_second etc.) land in `extra`.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      BenchPhaseResult phase;
      phase.name = run.benchmark_name();
      phase.workload = phase.name;
      phase.ops = static_cast<std::uint64_t>(run.iterations);
      phase.errors = run.error_occurred ? 1 : 0;
      phase.duration_s = run.real_accumulated_time;
      phase.achieved_rate =
          run.real_accumulated_time > 0
              ? static_cast<double>(run.iterations) /
                    run.real_accumulated_time
              : 0;
      phase.extra["real_time_per_iter_us"] =
          run.iterations > 0
              ? run.real_accumulated_time * 1e6 /
                    static_cast<double>(run.iterations)
              : 0;
      for (const auto& [counter_name, counter] : run.counters) {
        phase.extra[counter_name] = counter.value;
      }
      phases.push_back(std::move(phase));
    }
  }

  std::vector<BenchPhaseResult> phases;
};

// Drop-in replacement for BENCHMARK_MAIN(): same behaviour, plus when
// DMEMO_BENCH_JSON names a file the run is also written there as a
// schema-v1 closed-loop report.
inline int RunBenchMain(const char* bench_name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* out = std::getenv("DMEMO_BENCH_JSON");
  if (out != nullptr && *out != '\0') {
    BenchRunReport report;
    report.bench = bench_name;
    report.mode = "closed-loop";
    report.git_sha = DiscoverGitSha();
    report.phases = std::move(reporter.phases);
    auto written = WriteReport(out, report);
    if (!written.ok()) {
      std::fprintf(stderr, "%s: %s\n", bench_name,
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s: wrote %s\n", bench_name, out);
  }
  return 0;
}

#define DMEMO_BENCH_MAIN(bench_name)                                   \
  int main(int argc, char** argv) {                                    \
    return dmemo::bench::RunBenchMain(bench_name, argc, argv);         \
  }

}  // namespace dmemo::bench
