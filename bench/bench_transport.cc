// E7 — Section 3.1.1: the Transputer example.
//
// "Compute-bound processes that are ready to use the CPU are blocked until
// the long-winded communication is ended. A derived transport layer that
// supports packet fragmentation and virtual connections would allow the
// communication cost to be amortized over time and allow some useful
// processing to be done in the process."
//
// Workload: alternate sending a large message with a fixed chunk of compute.
// Over the blocking channel the compute waits for the full transmission;
// over the derived fragmenting transport it overlaps with it.
//
// Shape expected: the fragmenting transport finishes the combined workload
// in ~max(compute, transmit) instead of compute + transmit; the blocking
// channel's sender-visible latency grows linearly with message size while
// the fragmenting one's stays flat.
#include <thread>

#include "bench_common.h"
#include "transport/channel.h"
#include "transport/simnet.h"

namespace dmemo::bench {
namespace {

std::pair<ConnectionPtr, ConnectionPtr> SimPair() {
  static SimNetworkPtr network = std::make_shared<SimNetwork>();
  static std::atomic<int> counter{0};
  auto transport = MakeSimTransport(network);
  const std::string url = "sim://chan" + std::to_string(counter.fetch_add(1));
  auto listener = transport->Listen(url);
  if (!listener.ok()) throw std::runtime_error("listen");
  ConnectionPtr server;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    if (s.ok()) server = std::move(*s);
  });
  auto client = transport->Dial(url);
  accepter.join();
  if (!client.ok() || server == nullptr) throw std::runtime_error("dial");
  return {std::move(*client), std::move(server)};
}

// Deterministic compute chunk (~0.2 ms on a modern core per 100k iters).
double Compute(int iters) {
  double x = 1.0001;
  for (int i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

// The combined compute+communicate workload over either transport.
// kind 0 = blocking channel, 1 = fragmenting virtual connection.
void ComputeAndSend(benchmark::State& state) {
  const bool fragmenting = state.range(0) != 0;
  const std::size_t message = static_cast<std::size_t>(state.range(1));
  ChannelProfile profile;
  profile.bytes_per_ms = 50'000;  // 50 MB/s channel
  profile.packet_bytes = 4096;

  auto [raw_tx, raw_rx] = SimPair();
  ConnectionPtr tx = fragmenting
                         ? MakeFragmentingChannel(std::move(raw_tx), profile)
                         : MakeBlockingChannel(std::move(raw_tx), profile);
  // The receiver side only needs to reassemble for the fragmenting case.
  ConnectionPtr rx = fragmenting
                         ? MakeFragmentingChannel(std::move(raw_rx), profile)
                         : std::move(raw_rx);
  std::atomic<bool> stop{false};
  std::thread drain([&rx, &stop] {
    while (!stop.load()) {
      if (!rx->Receive().ok()) return;
    }
  });

  Bytes payload(message, 0x42);
  double sink = 0;
  for (auto _ : state) {
    // One round: send the big message, then do useful compute. Blocking
    // channel: the send itself eats the transmission time first.
    if (!tx->Send(payload).ok()) break;
    sink += Compute(400'000);
  }
  benchmark::DoNotOptimize(sink);
  stop.store(true);
  tx->Close();
  drain.join();
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(message));
  state.SetLabel(std::string(fragmenting ? "fragmenting" : "blocking") +
                 ", " + std::to_string(message / 1024) + "KiB msgs");
}
BENCHMARK(ComputeAndSend)
    ->ArgsProduct({{0, 1}, {64 << 10, 512 << 10}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Sender-visible Send() latency vs message size: the raw claim.
void SendLatency(benchmark::State& state) {
  const bool fragmenting = state.range(0) != 0;
  const std::size_t message = static_cast<std::size_t>(state.range(1));
  ChannelProfile profile;
  profile.bytes_per_ms = 50'000;
  profile.packet_bytes = 4096;
  auto [raw_tx, raw_rx] = SimPair();
  ConnectionPtr tx = fragmenting
                         ? MakeFragmentingChannel(std::move(raw_tx), profile)
                         : MakeBlockingChannel(std::move(raw_tx), profile);
  ConnectionPtr rx = fragmenting
                         ? MakeFragmentingChannel(std::move(raw_rx), profile)
                         : std::move(raw_rx);
  std::atomic<bool> stop{false};
  std::thread drain([&rx, &stop] {
    while (!stop.load()) {
      if (!rx->Receive().ok()) return;
    }
  });
  Bytes payload(message, 0x42);
  for (auto _ : state) {
    if (!tx->Send(payload).ok()) break;
    if (fragmenting) {
      // Pace the sender (untimed) so the pump queue cannot grow without
      // bound; the measured quantity is Send()'s own latency.
      state.PauseTiming();
      std::this_thread::sleep_for(
          std::chrono::microseconds(message / profile.bytes_per_ms * 1000));
      state.ResumeTiming();
    }
  }
  stop.store(true);
  tx->Close();
  drain.join();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(fragmenting ? "fragmenting" : "blocking") +
                 " send(), " + std::to_string(message / 1024) + "KiB");
}
BENCHMARK(SendLatency)
    ->ArgsProduct({{0, 1}, {64 << 10, 256 << 10, 1 << 20}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dmemo::bench

BENCHMARK_MAIN();
