// dmemo-analyze CLI. Loads src/**/*.{cc,h}, the docs, and the config
// files, runs every rule, and prints findings plus a per-rule summary.
//
//   dmemo-analyze [--repo DIR] [--verbose]
//
// Exit codes: 0 clean (allowlisted findings are fine), 1 unallowlisted
// findings, 2 configuration problem (missing config file, unreadable
// repo, malformed rank table).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace fs = std::filesystem;
using dmemo::analyze::AnalyzeInput;
using dmemo::analyze::Finding;
using dmemo::analyze::SourceFile;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Loads `path` into `files` with a repo-relative name; returns false when
// the file is unreadable.
bool Load(const fs::path& repo, const fs::path& path,
          std::vector<SourceFile>* files) {
  std::string content;
  if (!ReadFile(path, &content)) return false;
  files->push_back({fs::relative(path, repo).generic_string(),
                    std::move(content)});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path repo = ".";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      repo = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help") {
      std::cout << "usage: dmemo-analyze [--repo DIR] [--verbose]\n";
      return 0;
    } else {
      std::cerr << "dmemo-analyze: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  AnalyzeInput input;

  std::error_code ec;
  std::vector<fs::path> src_paths;
  for (fs::recursive_directory_iterator it(repo / "src", ec), end;
       it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") src_paths.push_back(it->path());
  }
  if (ec || src_paths.empty()) {
    std::cerr << "dmemo-analyze: no sources under " << (repo / "src")
              << "\n";
    return 2;
  }
  std::sort(src_paths.begin(), src_paths.end());
  for (const fs::path& p : src_paths) {
    if (!Load(repo, p, &input.sources)) {
      std::cerr << "dmemo-analyze: cannot read " << p << "\n";
      return 2;
    }
  }

  for (const fs::path& p :
       {repo / "DESIGN.md", repo / "README.md", repo / "ROADMAP.md"}) {
    if (fs::exists(p)) Load(repo, p, &input.docs);
  }
  if (fs::exists(repo / "docs")) {
    std::vector<fs::path> doc_paths;
    for (const auto& entry : fs::directory_iterator(repo / "docs")) {
      if (entry.is_regular_file() &&
          entry.path().extension() == ".md") {
        doc_paths.push_back(entry.path());
      }
    }
    std::sort(doc_paths.begin(), doc_paths.end());
    for (const fs::path& p : doc_paths) Load(repo, p, &input.docs);
  }

  std::string ranks_text;
  if (!ReadFile(repo / "src/locking/lock_ranks.def", &ranks_text)) {
    std::cerr << "dmemo-analyze: missing src/locking/lock_ranks.def\n";
    return 2;
  }
  std::string error;
  if (!dmemo::analyze::ParseRankTable(ranks_text, &input.ranks, &error)) {
    std::cerr << "dmemo-analyze: bad lock_ranks.def: " << error << "\n";
    return 2;
  }

  std::string blocking_text;
  if (!ReadFile(repo / "tools/analyze/blocking_calls.def", &blocking_text)) {
    std::cerr << "dmemo-analyze: missing tools/analyze/blocking_calls.def\n";
    return 2;
  }
  input.blocking = dmemo::analyze::ParseWordList(blocking_text);

  std::string ignore_text;
  if (ReadFile(repo / "tools/analyze/registry_ignore.def", &ignore_text)) {
    input.ignore = dmemo::analyze::ParseWordList(ignore_text);
  }

  std::vector<Finding> findings = dmemo::analyze::RunAllRules(input);

  int unallowlisted = 0;
  std::map<std::string, std::pair<int, int>> per_rule;  // open, allowlisted
  for (const Finding& f : findings) {
    if (f.allowlisted) {
      ++per_rule[f.rule].second;
      if (verbose) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] allowlisted: " << f.message << " (" << f.justification
                  << ")\n";
      }
      continue;
    }
    ++per_rule[f.rule].first;
    ++unallowlisted;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }

  std::cout << "dmemo-analyze: scanned " << input.sources.size()
            << " sources, " << input.docs.size() << " docs\n";
  for (const char* rule :
       {"lock-rank", "blocking-under-lock", "protocol-drift",
        "registry-drift", "zero-copy", "wal-mutation",
        "blocking-in-reactor"}) {
    const auto& counts = per_rule[rule];
    std::cout << "  " << rule << ": " << counts.first << " finding(s), "
              << counts.second << " allowlisted\n";
  }
  if (unallowlisted != 0) {
    std::cout << "dmemo-analyze: FAILED with " << unallowlisted
              << " finding(s)\n";
    return 1;
  }
  std::cout << "dmemo-analyze: OK\n";
  return 0;
}
