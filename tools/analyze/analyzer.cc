#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace dmemo::analyze {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `pos` is preceded only by spaces/tabs on its line.
bool AtLineStart(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    char c = s[pos - 1];
    if (c == '\n') return true;
    if (c != ' ' && c != '\t') return false;
    --pos;
  }
  return true;
}

}  // namespace

int Lexed::LineOf(std::size_t offset) const {
  auto it = std::upper_bound(line_start.begin(), line_start.end(), offset);
  return static_cast<int>(it - line_start.begin());
}

Lexed Lex(const std::string& s) {
  Lexed lx;
  lx.line_start.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') lx.line_start.push_back(i + 1);
  }

  auto add_comment = [&lx](std::size_t offset, const std::string& text) {
    std::string& slot = lx.comments[lx.LineOf(offset)];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  const std::size_t n = s.size();
  std::size_t i = 0;
  while (i < n) {
    char c = s[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && s[j] != '\n') ++j;
      add_comment(i, s.substr(i + 2, j - i - 2));
      i = j;
      continue;
    }
    // Block comment (recorded on its first line).
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) ++j;
      add_comment(i, s.substr(i + 2, (j + 1 < n ? j : n) - (i + 2)));
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Preprocessor directive: skip the whole logical line (backslash
    // continuations included) so #include paths and macro bodies don't
    // pollute the token stream.
    if (c == '#' && AtLineStart(s, i)) {
      std::size_t j = i;
      while (j < n) {
        if (s[j] == '\n') {
          std::size_t k = j;
          while (k > i && (s[k - 1] == ' ' || s[k - 1] == '\t' ||
                           s[k - 1] == '\r')) {
            --k;
          }
          if (k > i && s[k - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      i = j;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && s[d] != '(') ++d;
      std::string delim = s.substr(i + 2, d - i - 2);
      std::string closer = ")" + delim + "\"";
      std::size_t end = s.find(closer, d + 1);
      std::size_t body_end = (end == std::string::npos) ? n : end;
      lx.tokens.push_back(
          {Token::kString, s.substr(d + 1, body_end - d - 1), i});
      i = (end == std::string::npos) ? n : end + closer.size();
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(s[j])) ++j;
      lx.tokens.push_back({Token::kIdent, s.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0)) {
      std::size_t j = i + 1;
      while (j < n) {
        char d = s[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                    s[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      lx.tokens.push_back({Token::kNumber, s.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      std::string content;
      while (j < n && s[j] != '"') {
        if (s[j] == '\\' && j + 1 < n) {
          content += s[j];
          content += s[j + 1];
          j += 2;
        } else {
          content += s[j];
          ++j;
        }
      }
      lx.tokens.push_back({Token::kString, content, i});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && s[j] != '\'') {
        if (s[j] == '\\' && j + 1 < n) {
          j += 2;
        } else {
          ++j;
        }
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Punctuation; "::" and "->" kept whole (the scanners rely on them).
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      lx.tokens.push_back({Token::kPunct, "::", i});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      lx.tokens.push_back({Token::kPunct, "->", i});
      i += 2;
      continue;
    }
    lx.tokens.push_back({Token::kPunct, std::string(1, c), i});
    ++i;
  }
  return lx;
}

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

bool ParseRankTable(const std::string& text, RankTable* table,
                    std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "rank") {
      int rank = 0;
      std::string name;
      if (!(ls >> rank >> name)) {
        if (error != nullptr) {
          *error = "line " + std::to_string(lineno) +
                   ": expected 'rank <n> <name>'";
        }
        return false;
      }
      table->rank[name] = rank;
    } else if (kind == "leaf") {
      std::string name;
      if (!(ls >> name)) {
        if (error != nullptr) {
          *error =
              "line " + std::to_string(lineno) + ": expected 'leaf <name>'";
        }
        return false;
      }
      table->leaf.insert(name);
    } else {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": unknown directive '" +
                 kind + "'";
      }
      return false;
    }
  }
  return true;
}

std::set<std::string> ParseWordList(const std::string& text) {
  std::set<std::string> words;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string word;
    if (ls >> word) words.insert(word);
  }
  return words;
}

// ---------------------------------------------------------------------------
// Scope tracking
// ---------------------------------------------------------------------------

namespace {

struct Frame {
  enum Kind { kGeneric, kClass, kLambda };
  Kind kind;
  // Class name for kClass frames; for kGeneric frames, the class qualifier
  // of the enclosing out-of-class method definition ("" when none) so that
  // `MutexLock lock(mu_)` inside `void MemoServer::Foo() { ... }` resolves
  // against MemoServer's members.
  std::string name;
};

// Tracks brace nesting, class bodies, and lambda bodies over a token
// stream. Feed every token, in order, to Observe().
class ScopeTracker {
 public:
  explicit ScopeTracker(const std::vector<Token>& toks) : toks_(toks) {}

  void Observe(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind == Token::kIdent) {
      if ((t.text == "class" || t.text == "struct") && !PrevIsEnum(i)) {
        ScanClassHead(i);
      }
      return;
    }
    if (t.kind != Token::kPunct) return;
    if (t.text == ";") {
      pending_class_.clear();
      return;
    }
    if (t.text == "{") {
      Frame f{Frame::kGeneric, ""};
      if (IsLambdaBrace(i)) {
        f.kind = Frame::kLambda;
        ++lambda_depth_;
      } else if (!pending_class_.empty()) {
        f.kind = Frame::kClass;
        f.name = pending_class_;
        pending_class_.clear();
      } else {
        f.name = OwnerClassOf(i);
      }
      frames_.push_back(f);
      return;
    }
    if (t.text == "}") {
      if (!frames_.empty()) {
        if (frames_.back().kind == Frame::kLambda) --lambda_depth_;
        frames_.pop_back();
      }
      return;
    }
  }

  int depth() const { return static_cast<int>(frames_.size()); }
  int lambda_depth() const { return lambda_depth_; }

  // Enclosing class names (class bodies and out-of-class method owners),
  // innermost first.
  std::vector<std::string> class_stack() const {
    std::vector<std::string> out;
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind != Frame::kLambda && !it->name.empty()) {
        out.push_back(it->name);
      }
    }
    return out;
  }

 private:
  bool PrevIsEnum(std::size_t i) const {
    return i > 0 && toks_[i - 1].kind == Token::kIdent &&
           toks_[i - 1].text == "enum";
  }

  // At a class/struct keyword: look ahead for the class name. A definition
  // head ends at '{' or ':' (base list); anything else ( ';' forward decl,
  // template parameter lists, ... ) leaves no pending class. Attribute-like
  // macro idents before the name are skipped by keeping the LAST ident.
  void ScanClassHead(std::size_t i) {
    pending_class_.clear();
    std::string last_ident;
    for (std::size_t j = i + 1; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.kind == Token::kIdent) {
        if (t.text == "final") continue;
        if (t.text == "class" || t.text == "struct") return;
        last_ident = t.text;
        continue;
      }
      if (t.kind == Token::kPunct) {
        if (t.text == "::") continue;  // qualified name: keep the last part
        if (t.text == "{" || t.text == ":") {
          if (!last_ident.empty()) pending_class_ = last_ident;
          return;
        }
        return;  // ';', '<', '>', ',', '(' ... not a definition head
      }
      return;
    }
  }

  // `{` opens a lambda body when, skipping `mutable`/`noexcept`, it follows
  // `]` (capture list without params) or `)` whose matching `(` follows `]`.
  bool IsLambdaBrace(std::size_t i) const {
    if (i == 0) return false;
    std::size_t j = i - 1;
    while (j > 0 && toks_[j].kind == Token::kIdent &&
           (toks_[j].text == "mutable" || toks_[j].text == "noexcept")) {
      --j;
    }
    if (toks_[j].kind != Token::kPunct) return false;
    if (toks_[j].text == "]") return true;
    if (toks_[j].text != ")") return false;
    int depth = 0;
    while (true) {
      const Token& t = toks_[j];
      if (t.kind == Token::kPunct) {
        if (t.text == ")") ++depth;
        if (t.text == "(") {
          --depth;
          if (depth == 0) break;
        }
      }
      if (j == 0) return false;
      --j;
    }
    return j > 0 && toks_[j - 1].kind == Token::kPunct &&
           toks_[j - 1].text == "]";
  }

  // For a non-class, non-lambda `{` at index i, returns the class qualifier
  // when the brace opens an out-of-class method definition:
  //   ReturnType Class::Method(args) [const] [noexcept] [override] {
  //   Class::~Class() {
  // Control-flow braces (`if (...) {`), plain functions, and constructor
  // bodies behind init lists don't match and return "". Trailing
  // DMEMO_*(...) annotation macros between the parameter list and the brace
  // are skipped.
  std::string OwnerClassOf(std::size_t i) const {
    if (i == 0) return "";
    std::size_t j = i - 1;
    // Skip trailing qualifiers on the definition head.
    while (j > 0 && toks_[j].kind == Token::kIdent &&
           (toks_[j].text == "const" || toks_[j].text == "noexcept" ||
            toks_[j].text == "override" || toks_[j].text == "final")) {
      --j;
    }
    // Walk back over `(...)` groups: the parameter list, possibly preceded
    // by DMEMO_* annotation macros of their own.
    std::size_t name_idx = toks_.size();
    while (true) {
      if (toks_[j].kind != Token::kPunct || toks_[j].text != ")") return "";
      int depth = 0;
      while (true) {
        const Token& t = toks_[j];
        if (t.kind == Token::kPunct) {
          if (t.text == ")") ++depth;
          if (t.text == "(") {
            --depth;
            if (depth == 0) break;
          }
        }
        if (j == 0) return "";
        --j;
      }
      if (j == 0) return "";
      const Token& before = toks_[j - 1];
      if (before.kind != Token::kIdent) return "";
      if (before.text.rfind("DMEMO_", 0) == 0) {
        if (j < 2) return "";
        j -= 2;  // step to the token before the macro ident, expect ')'
        continue;
      }
      name_idx = j - 1;  // the method name
      break;
    }
    std::size_t k = name_idx;
    // Destructor: `~Name` — the qualifier check applies before the '~'.
    if (k > 0 && toks_[k - 1].kind == Token::kPunct &&
        toks_[k - 1].text == "~") {
      if (k < 2) return "";
      k -= 1;
    }
    if (k < 2) return "";
    if (toks_[k - 1].kind != Token::kPunct || toks_[k - 1].text != "::") {
      return "";
    }
    if (toks_[k - 2].kind != Token::kIdent) return "";
    return toks_[k - 2].text;
  }

  const std::vector<Token>& toks_;
  std::vector<Frame> frames_;
  std::string pending_class_;
  int lambda_depth_ = 0;
};

// Strips one trailing '_' from a member identifier: `send_mu_` -> `send_mu`.
std::string StripTrailingUnderscore(const std::string& ident) {
  if (!ident.empty() && ident.back() == '_') {
    return ident.substr(0, ident.size() - 1);
  }
  return ident;
}

// Extracts `Name` from an "analyze:lock(Name)" marker, if present.
bool LockHint(const std::string& comment, std::string* name) {
  auto pos = comment.find("analyze:lock(");
  if (pos == std::string::npos) return false;
  pos += std::string("analyze:lock(").size();
  auto close = comment.find(')', pos);
  if (close == std::string::npos) return false;
  *name = comment.substr(pos, close - pos);
  return true;
}

}  // namespace

MutexIndex BuildMutexIndex(const std::vector<SourceFile>& sources) {
  MutexIndex index;
  for (const SourceFile& file : sources) {
    Lexed lx = Lex(file.content);
    const std::vector<Token>& toks = lx.tokens;
    ScopeTracker tracker(toks);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      tracker.Observe(i);
      const Token& t = toks[i];
      if (t.kind != Token::kIdent || t.text != "Mutex") continue;
      if (i > 0 && toks[i - 1].kind == Token::kPunct &&
          toks[i - 1].text == "::") {
        continue;
      }
      if (i + 2 >= toks.size()) continue;
      const Token& name_tok = toks[i + 1];
      const Token& next = toks[i + 2];
      if (name_tok.kind != Token::kIdent) continue;  // `Mutex&` param etc.
      if (next.kind != Token::kPunct ||
          (next.text != ";" && next.text != "{" && next.text != "=")) {
        continue;
      }
      std::vector<std::string> classes = tracker.class_stack();
      if (classes.empty()) continue;  // only member mutexes are ranked
      std::string canonical;
      if (next.text == "{" && i + 3 < toks.size() &&
          toks[i + 3].kind == Token::kString) {
        canonical = toks[i + 3].text;  // Mutex mu_{"Class::mu"};
      } else {
        canonical =
            classes.front() + "::" + StripTrailingUnderscore(name_tok.text);
      }
      index.by_class[{classes.front(), name_tok.text}] = canonical;
      index.by_member[name_tok.text].insert(canonical);
    }
  }
  return index;
}

void WalkGuards(
    const Lexed& lexed, const MutexIndex& index,
    const std::set<std::string>& blocking,
    const std::function<void(const GuardInfo& acquired,
                             const std::vector<GuardInfo>& held)>& on_acquire,
    const std::function<void(const std::string& callee, int line,
                             const std::vector<GuardInfo>& held)>& on_call) {
  const std::vector<Token>& toks = lexed.tokens;
  ScopeTracker tracker(toks);

  struct ActiveGuard {
    GuardInfo info;
    int depth;         // frame depth the guard lives at
    int lambda_depth;  // lambda nesting when acquired
    bool active;       // false between lock.Unlock() and lock.Lock()
  };
  std::vector<ActiveGuard> guards;

  auto live_guards = [&]() {
    std::vector<GuardInfo> live;
    for (const ActiveGuard& g : guards) {
      if (g.active && g.lambda_depth == tracker.lambda_depth()) {
        live.push_back(g.info);
      }
    }
    return live;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    tracker.Observe(i);
    const Token& t = toks[i];
    if (t.kind == Token::kPunct && t.text == "}") {
      while (!guards.empty() && guards.back().depth > tracker.depth()) {
        guards.pop_back();
      }
      continue;
    }
    if (t.kind != Token::kIdent) continue;

    // Guard acquisition: MutexLock <var>(<expr>); / ScopedLock <var>(<expr>);
    if ((t.text == "MutexLock" || t.text == "ScopedLock") &&
        i + 2 < toks.size() && toks[i + 1].kind == Token::kIdent &&
        toks[i + 2].kind == Token::kPunct && toks[i + 2].text == "(") {
      // Collect the acquisition expression up to the matching ')'.
      std::size_t j = i + 2;
      int depth = 0;
      std::string last_ident;
      for (; j < toks.size(); ++j) {
        const Token& e = toks[j];
        if (e.kind == Token::kPunct) {
          if (e.text == "(") ++depth;
          if (e.text == ")") {
            --depth;
            if (depth == 0) break;
          }
        } else if (e.kind == Token::kIdent) {
          last_ident = e.text;
        }
      }
      GuardInfo info;
      info.var = toks[i + 1].text;
      info.line = lexed.LineOf(t.offset);
      std::string hint;
      auto comment = lexed.comments.find(info.line);
      if (comment != lexed.comments.end() &&
          LockHint(comment->second, &hint)) {
        info.lock = hint;
        info.resolved = true;
      } else if (!last_ident.empty()) {
        bool found = false;
        for (const std::string& cls : tracker.class_stack()) {
          auto it = index.by_class.find({cls, last_ident});
          if (it != index.by_class.end()) {
            info.lock = it->second;
            info.resolved = found = true;
            break;
          }
        }
        if (!found) {
          auto it = index.by_member.find(last_ident);
          if (it != index.by_member.end() && it->second.size() == 1) {
            info.lock = *it->second.begin();
            info.resolved = true;
          } else {
            info.lock = last_ident;
          }
        }
      }
      if (on_acquire) on_acquire(info, live_guards());
      guards.push_back(
          {info, tracker.depth(), tracker.lambda_depth(), true});
      i = j;  // skip past the acquisition expression
      continue;
    }

    // Mid-scope guard drop / re-take: <var>.Unlock() / <var>.Lock().
    if (i + 3 < toks.size() && toks[i + 1].kind == Token::kPunct &&
        toks[i + 1].text == "." && toks[i + 2].kind == Token::kIdent &&
        (toks[i + 2].text == "Unlock" || toks[i + 2].text == "Lock") &&
        toks[i + 3].kind == Token::kPunct && toks[i + 3].text == "(") {
      for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        if (it->info.var == t.text) {
          it->active = (toks[i + 2].text == "Lock");
          break;
        }
      }
      // fall through: Unlock/Lock are not blocking calls
    }

    // Call to a configured blocking name while guards are live.
    if (blocking.count(t.text) != 0 && i + 1 < toks.size() &&
        toks[i + 1].kind == Token::kPunct && toks[i + 1].text == "(") {
      std::vector<GuardInfo> live = live_guards();
      if (!live.empty() && on_call) {
        on_call(t.text, lexed.LineOf(t.offset), live);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

void ApplyAllowlist(const std::vector<SourceFile>& sources,
                    std::vector<Finding>* findings) {
  // Lex lazily: only files that actually have findings.
  std::map<std::string, Lexed> lexed;
  auto comments_for = [&](const std::string& path) -> const Lexed* {
    auto it = lexed.find(path);
    if (it != lexed.end()) return &it->second;
    for (const SourceFile& f : sources) {
      if (f.path == path) {
        return &lexed.emplace(path, Lex(f.content)).first->second;
      }
    }
    return nullptr;
  };

  for (Finding& finding : *findings) {
    if (finding.allowlisted) continue;
    const Lexed* lx = comments_for(finding.file);
    if (lx == nullptr) continue;
    const std::string marker = "analyze:allow(" + finding.rule + ")";
    for (int line : {finding.line, finding.line - 1}) {
      auto it = lx->comments.find(line);
      if (it == lx->comments.end()) continue;
      auto pos = it->second.find(marker);
      if (pos == std::string::npos) continue;
      std::string just = it->second.substr(pos + marker.size());
      while (!just.empty() && (just.front() == ' ' || just.front() == ':')) {
        just.erase(just.begin());
      }
      if (just.empty()) {
        finding.message += " (allow marker present but missing justification)";
        break;
      }
      finding.allowlisted = true;
      finding.justification = just;
      break;
    }
  }
}

}  // namespace dmemo::analyze
