// dmemo-analyze: project-specific static analysis for D-Memo.
//
// A deliberately small token/scope-level analyzer — no libclang, no
// compile database — so it builds in seconds and runs in every CI job.
// It understands just enough C++ to track brace scopes, class bodies,
// lambda bodies, and MutexLock/ScopedLock guard lifetimes, which is all
// the project's invariants need:
//
//   lock-rank            nested guard acquisitions must follow the ranks
//                        declared in src/locking/lock_ranks.def
//   blocking-under-lock  no call from blocking_calls.def while a guard
//                        is live in the enclosing scope
//   protocol-drift       Op enum <-> OpName <-> PROTOCOL.md op table <->
//                        server dispatch stay in sync; Encode*/Decode*
//                        touch the same fields in declaration order
//   registry-drift       every DMEMO_* env var read and dmemo_* metric
//                        registered appears in the docs (and vice versa)
//   zero-copy            no payload flattening in src/server, src/transport
//                        (absorbed from the old check_lint.sh grep)
//   wal-mutation         folder_server.cc directory mutations carry the
//                        "wal:applied" marker (absorbed grep)
//   blocking-in-reactor  no blocking_calls.def call reachable (same-file
//                        call graph, lambda bodies excluded) from Reactor
//                        methods or functions marked
//                        // analyze:reactor-context
//
// Findings can be suppressed per line with a justification:
//   // analyze:allow(<rule>) <why this site is safe>
// on the offending line or the line directly above. A marker without a
// justification does not suppress.
//
// Ambiguous guard expressions (e.g. `MutexLock lock(state->mu)`) can be
// pinned to a canonical lock name with:
//   // analyze:lock(<Canonical::name>)
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <set>
#include <string>
#include <vector>

namespace dmemo::analyze {

// ---------------------------------------------------------------------------
// Inputs and outputs
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/server/rpc_channel.cc"
  std::string content;  // full file text
};

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  bool allowlisted = false;
  std::string justification;  // text after the analyze:allow marker
};

// Lock ranks parsed from lock_ranks.def.
struct RankTable {
  std::map<std::string, int> rank;  // canonical name -> rank
  std::set<std::string> leaf;       // terminal locks

  bool Known(const std::string& name) const {
    return rank.count(name) != 0 || leaf.count(name) != 0;
  }
};

// Parses "rank <n> <name>" / "leaf <name>" lines ('#' comments). Returns
// false and fills *error on malformed input.
bool ParseRankTable(const std::string& text, RankTable* table,
                    std::string* error);

// One bare word per line, '#' comments (blocking_calls.def,
// registry_ignore.def).
std::set<std::string> ParseWordList(const std::string& text);

struct AnalyzeInput {
  std::vector<SourceFile> sources;  // src/**/*.{cc,h}
  std::vector<SourceFile> docs;     // DESIGN.md, README.md, docs/*.md
  RankTable ranks;
  std::set<std::string> blocking;  // blocking call names
  std::set<std::string> ignore;    // registry-drift ignore names
};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;    // string tokens hold the literal's content, unquoted
  std::size_t offset;  // byte offset into the file
};

struct Lexed {
  std::vector<Token> tokens;
  std::vector<std::size_t> line_start;  // line_start[i] = offset of line i+1
  std::map<int, std::string> comments;  // 1-based line -> comment text

  int LineOf(std::size_t offset) const;
};

// Tokenizes C++ source: skips comments (recording them per line for the
// allow/lock markers), strings, char literals, raw strings, and whole
// preprocessor directives. Two-char puncts "::" and "->" are single tokens.
Lexed Lex(const std::string& content);

// ---------------------------------------------------------------------------
// Rules. Each returns its findings with the allowlist already applied.
// ---------------------------------------------------------------------------

std::vector<Finding> CheckLockRank(const AnalyzeInput& input);
std::vector<Finding> CheckBlockingUnderLock(const AnalyzeInput& input);
std::vector<Finding> CheckProtocolDrift(const AnalyzeInput& input);
std::vector<Finding> CheckRegistryDrift(const AnalyzeInput& input);
std::vector<Finding> CheckZeroCopy(const AnalyzeInput& input);
std::vector<Finding> CheckWalMutation(const AnalyzeInput& input);
std::vector<Finding> CheckBlockingInReactor(const AnalyzeInput& input);

std::vector<Finding> RunAllRules(const AnalyzeInput& input);

// Marks findings whose line (or the one above) carries a justified
// "analyze:allow(<rule>)" marker. Called by the rules themselves; exposed
// for tests.
void ApplyAllowlist(const std::vector<SourceFile>& sources,
                    std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// Scope machinery shared by the lock rules (exposed for tests)
// ---------------------------------------------------------------------------

// Canonical names for every Mutex member declared in the corpus.
struct MutexIndex {
  // (enclosing class, member ident) -> canonical name
  std::map<std::pair<std::string, std::string>, std::string> by_class;
  // member ident -> every canonical name it maps to anywhere
  std::map<std::string, std::set<std::string>> by_member;
};

MutexIndex BuildMutexIndex(const std::vector<SourceFile>& sources);

struct GuardInfo {
  std::string var;   // guard variable name
  std::string lock;  // canonical lock name (raw ident when unresolved)
  int line = 0;      // acquisition line
  bool resolved = false;
};

// Walks one file's scopes. on_acquire fires at each guard acquisition with
// the guards already live; on_call fires for each call to a name in
// `blocking` made while at least one guard is live. Guards die at the end
// of their brace scope, go dormant across lock.Unlock()/lock.Lock(), and
// are invisible inside lambda bodies defined in their scope (the lambda
// may run after the guard is gone).
void WalkGuards(
    const Lexed& lexed, const MutexIndex& index,
    const std::set<std::string>& blocking,
    const std::function<void(const GuardInfo& acquired,
                             const std::vector<GuardInfo>& held)>& on_acquire,
    const std::function<void(const std::string& callee, int line,
                             const std::vector<GuardInfo>& held)>& on_call);

}  // namespace dmemo::analyze
