// Rule implementations for dmemo-analyze. See analyzer.h for the contract.
#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace dmemo::analyze {

namespace {

constexpr char kLockRank[] = "lock-rank";
constexpr char kBlocking[] = "blocking-under-lock";
constexpr char kProtocol[] = "protocol-drift";
constexpr char kRegistry[] = "registry-drift";
constexpr char kZeroCopy[] = "zero-copy";
constexpr char kWal[] = "wal-mutation";
constexpr char kReactor[] = "blocking-in-reactor";

const SourceFile* FindBySuffix(const std::vector<SourceFile>& files,
                               const std::string& suffix) {
  for (const SourceFile& f : files) {
    if (f.path.size() >= suffix.size() &&
        f.path.compare(f.path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return &f;
    }
  }
  return nullptr;
}

int Levenshtein(const std::string& a, const std::string& b) {
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

// "did you mean 'X'?" when a near-miss (edit distance <= 2) exists.
std::string NearMissHint(const std::string& name,
                         const std::set<std::string>& candidates) {
  for (const std::string& c : candidates) {
    if (c == name) continue;
    if (Levenshtein(name, c) <= 2) return " — did you mean '" + c + "'?";
  }
  return "";
}

std::string JoinLocks(const std::vector<GuardInfo>& held) {
  std::string out;
  for (const GuardInfo& g : held) {
    if (!out.empty()) out += ", ";
    out += "'" + g.lock + "'";
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule 1: lock-rank conformance
// ---------------------------------------------------------------------------

std::vector<Finding> CheckLockRank(const AnalyzeInput& input) {
  std::vector<Finding> out;
  MutexIndex index = BuildMutexIndex(input.sources);
  const std::set<std::string> no_blocking;
  for (const SourceFile& file : input.sources) {
    Lexed lx = Lex(file.content);
    WalkGuards(
        lx, index, no_blocking,
        [&](const GuardInfo& acq, const std::vector<GuardInfo>& held) {
          if (!acq.resolved) {
            out.push_back({kLockRank, file.path, acq.line,
                           "cannot resolve the lock guarded by '" + acq.var +
                               "' (expression names '" + acq.lock +
                               "'); pin it with // analyze:lock(<name>)",
                           false,
                           ""});
            return;
          }
          if (!input.ranks.Known(acq.lock)) {
            out.push_back({kLockRank, file.path, acq.line,
                           "lock '" + acq.lock +
                               "' is not in src/locking/lock_ranks.def",
                           false,
                           ""});
            return;
          }
          const bool acq_leaf = input.ranks.leaf.count(acq.lock) != 0;
          for (const GuardInfo& h : held) {
            if (!h.resolved || !input.ranks.Known(h.lock)) continue;
            if (h.lock == acq.lock) {
              out.push_back({kLockRank, file.path, acq.line,
                             "re-acquires '" + acq.lock +
                                 "' already held since line " +
                                 std::to_string(h.line),
                             false,
                             ""});
              continue;
            }
            if (input.ranks.leaf.count(h.lock) != 0) {
              out.push_back({kLockRank, file.path, acq.line,
                             "acquires '" + acq.lock +
                                 "' while holding leaf lock '" + h.lock +
                                 "' (leaves must be innermost)",
                             false,
                             ""});
              continue;
            }
            if (acq_leaf) continue;  // leaves may nest under anything
            const int acq_rank = input.ranks.rank.at(acq.lock);
            const int held_rank = input.ranks.rank.at(h.lock);
            if (acq_rank <= held_rank) {
              out.push_back(
                  {kLockRank, file.path, acq.line,
                   "acquires '" + acq.lock + "' (rank " +
                       std::to_string(acq_rank) + ") while holding '" +
                       h.lock + "' (rank " + std::to_string(held_rank) +
                       "); ranks must strictly increase inward",
                   false,
                   ""});
            }
          }
        },
        nullptr);
  }
  ApplyAllowlist(input.sources, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Rule 2: blocking-under-lock
// ---------------------------------------------------------------------------

std::vector<Finding> CheckBlockingUnderLock(const AnalyzeInput& input) {
  std::vector<Finding> out;
  MutexIndex index = BuildMutexIndex(input.sources);
  for (const SourceFile& file : input.sources) {
    Lexed lx = Lex(file.content);
    WalkGuards(lx, index, input.blocking, nullptr,
               [&](const std::string& callee, int line,
                   const std::vector<GuardInfo>& held) {
                 out.push_back({kBlocking, file.path, line,
                                "blocking call '" + callee +
                                    "' while holding " + JoinLocks(held),
                                false,
                                ""});
               });
  }
  ApplyAllowlist(input.sources, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Rule 3: protocol drift
// ---------------------------------------------------------------------------

namespace {

struct EnumEntry {
  std::string name;  // kPut
  int value;
  int line;
};

std::vector<EnumEntry> ParseOpEnum(const Lexed& lx) {
  std::vector<EnumEntry> entries;
  const std::vector<Token>& toks = lx.tokens;
  std::size_t i = 0;
  for (; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Token::kIdent && toks[i].text == "enum" &&
        toks[i + 1].kind == Token::kIdent && toks[i + 1].text == "class" &&
        toks[i + 2].kind == Token::kIdent && toks[i + 2].text == "Op") {
      break;
    }
  }
  if (i + 2 >= toks.size()) return entries;
  while (i < toks.size() &&
         !(toks[i].kind == Token::kPunct && toks[i].text == "{")) {
    ++i;
  }
  int next_value = 0;
  for (++i; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::kPunct && t.text == "}") break;
    if (t.kind != Token::kIdent) continue;
    EnumEntry e;
    e.name = t.text;
    e.line = lx.LineOf(t.offset);
    if (i + 2 < toks.size() && toks[i + 1].kind == Token::kPunct &&
        toks[i + 1].text == "=" && toks[i + 2].kind == Token::kNumber) {
      e.value = std::stoi(toks[i + 2].text);
      i += 2;
    } else {
      e.value = next_value;
    }
    next_value = e.value + 1;
    entries.push_back(e);
  }
  return entries;
}

// Token range [begin, end) of the body of `qualified` ("Name" or "A::B").
bool FindFunctionBody(const std::vector<Token>& toks,
                      const std::string& qualified, std::size_t* begin,
                      std::size_t* end) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    auto sep = qualified.find("::", start);
    if (sep == std::string::npos) {
      parts.push_back(qualified.substr(start));
      break;
    }
    parts.push_back(qualified.substr(start, sep - start));
    start = sep + 2;
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    std::size_t j = i;
    bool matched = true;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (p > 0) {
        if (j >= toks.size() || toks[j].kind != Token::kPunct ||
            toks[j].text != "::") {
          matched = false;
          break;
        }
        ++j;
      }
      if (j >= toks.size() || toks[j].kind != Token::kIdent ||
          toks[j].text != parts[p]) {
        matched = false;
        break;
      }
      ++j;
    }
    if (!matched) continue;
    if (j >= toks.size() || toks[j].kind != Token::kPunct ||
        toks[j].text != "(") {
      continue;
    }
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].kind != Token::kPunct) continue;
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") {
        --depth;
        if (depth == 0) break;
      }
    }
    ++j;
    while (j < toks.size() && toks[j].kind == Token::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Token::kPunct ||
        toks[j].text != "{") {
      continue;  // declaration or call, not a definition
    }
    *begin = j + 1;
    int brace = 1;
    for (++j; j < toks.size(); ++j) {
      if (toks[j].kind != Token::kPunct) continue;
      if (toks[j].text == "{") ++brace;
      if (toks[j].text == "}") {
        --brace;
        if (brace == 0) break;
      }
    }
    *end = j;
    return true;
  }
  return false;
}

// Field names of `struct <name> { ... }` in declaration order. Statements
// containing parens or braces (methods, ctors) are skipped; a member is the
// identifier before '=' (defaulted) or the last identifier (plain decl).
std::vector<std::string> StructMembers(const Lexed& lx,
                                       const std::string& name) {
  std::vector<std::string> members;
  const std::vector<Token>& toks = lx.tokens;
  std::size_t i = 0;
  for (; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Token::kIdent &&
        (toks[i].text == "struct" || toks[i].text == "class") &&
        toks[i + 1].kind == Token::kIdent && toks[i + 1].text == name &&
        toks[i + 2].kind == Token::kPunct && toks[i + 2].text == "{") {
      break;
    }
  }
  if (i + 2 >= toks.size()) return members;
  i += 3;
  int depth = 1;
  std::vector<const Token*> stmt;
  bool has_call = false;
  for (; i < toks.size() && depth > 0; ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::kPunct) {
      if (t.text == "{") {
        ++depth;
        has_call = true;
        continue;
      }
      if (t.text == "}") {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (t.text == "(") has_call = true;
      if (t.text == ";") {
        if (!has_call && !stmt.empty()) {
          const Token* member = nullptr;
          for (std::size_t k = 0; k < stmt.size(); ++k) {
            if (stmt[k]->kind == Token::kPunct && stmt[k]->text == "=") {
              if (k > 0 && stmt[k - 1]->kind == Token::kIdent) {
                member = stmt[k - 1];
              }
              break;
            }
            if (stmt[k]->kind == Token::kIdent) member = stmt[k];
          }
          if (member != nullptr && !stmt.empty() &&
              stmt.front()->text != "using" && stmt.front()->text != "friend" &&
              stmt.front()->text != "static") {
            members.push_back(member->text);
          }
        }
        stmt.clear();
        has_call = false;
        continue;
      }
    }
    if (depth == 1) stmt.push_back(&t);
  }
  return members;
}

// First occurrence, in body order, of each member name used in the range.
std::vector<std::string> MemberSequence(const std::vector<Token>& toks,
                                        std::size_t begin, std::size_t end,
                                        const std::set<std::string>& members,
                                        std::vector<int>* lines,
                                        const Lexed& lx) {
  std::vector<std::string> seq;
  std::set<std::string> seen;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent) continue;
    if (members.count(toks[i].text) == 0) continue;
    if (!seen.insert(toks[i].text).second) continue;
    seq.push_back(toks[i].text);
    if (lines != nullptr) lines->push_back(lx.LineOf(toks[i].offset));
  }
  return seq;
}

struct FieldGroup {
  std::string struct_name;              // declared in protocol.h
  std::string head_fn;                  // shared head encoder
  std::vector<std::string> encode_fns;  // each appends to the head
  std::string decode_fn;                // must cover every field
};

}  // namespace

std::vector<Finding> CheckProtocolDrift(const AnalyzeInput& input) {
  std::vector<Finding> out;
  const SourceFile* header = FindBySuffix(input.sources, "server/protocol.h");
  const SourceFile* impl = FindBySuffix(input.sources, "server/protocol.cc");
  const SourceFile* doc = FindBySuffix(input.docs, "PROTOCOL.md");
  if (header == nullptr || impl == nullptr) return out;

  Lexed hdr = Lex(header->content);
  Lexed cc = Lex(impl->content);

  // --- Op enum <-> OpName <-> doc table <-> dispatch --------------------
  std::vector<EnumEntry> ops = ParseOpEnum(hdr);
  if (ops.empty()) {
    out.push_back({kProtocol, header->path, 1,
                   "could not locate 'enum class Op'", false, ""});
  }

  // OpName(): case Op::kX: return "x";
  std::map<std::string, std::string> op_names;  // kPut -> "put"
  {
    std::size_t begin = 0;
    std::size_t end = 0;
    if (FindFunctionBody(cc.tokens, "OpName", &begin, &end)) {
      const std::vector<Token>& toks = cc.tokens;
      for (std::size_t i = begin; i + 6 < end; ++i) {
        if (toks[i].kind == Token::kIdent && toks[i].text == "case" &&
            toks[i + 1].text == "Op" && toks[i + 2].text == "::" &&
            toks[i + 3].kind == Token::kIdent && toks[i + 4].text == ":" &&
            toks[i + 5].text == "return" &&
            toks[i + 6].kind == Token::kString) {
          op_names[toks[i + 3].text] = toks[i + 6].text;
        }
      }
    } else {
      out.push_back({kProtocol, impl->path, 1,
                     "could not locate OpName() definition", false, ""});
    }
  }

  // PROTOCOL.md rows: | name | code | ...
  std::map<std::string, std::pair<int, int>> doc_ops;  // name -> (code, line)
  if (doc != nullptr) {
    std::istringstream in(doc->content);
    std::string line;
    int lineno = 0;
    static const std::regex row_re(
        R"(^\s*\|\s*([a-z][a-z0-9_]*)\s*\|\s*([0-9]+)\s*\|)");
    while (std::getline(in, line)) {
      ++lineno;
      std::smatch m;
      if (std::regex_search(line, m, row_re)) {
        doc_ops[m[1].str()] = {std::stoi(m[2].str()), lineno};
      }
    }
  }

  // Dispatch sites: Op::kX mentioned anywhere in the server dispatchers.
  std::set<std::string> dispatched;
  for (const char* suffix : {"server/memo_server.cc", "server/folder_server.cc"}) {
    const SourceFile* f = FindBySuffix(input.sources, suffix);
    if (f == nullptr) continue;
    Lexed lx = Lex(f->content);
    const std::vector<Token>& toks = lx.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == Token::kIdent && toks[i].text == "Op" &&
          toks[i + 1].kind == Token::kPunct && toks[i + 1].text == "::" &&
          toks[i + 2].kind == Token::kIdent) {
        dispatched.insert(toks[i + 2].text);
      }
    }
  }

  std::set<std::string> op_name_strings;
  for (const EnumEntry& op : ops) {
    auto named = op_names.find(op.name);
    if (named == op_names.end()) {
      if (!op_names.empty()) {
        out.push_back({kProtocol, impl->path, 1,
                       "op '" + op.name + "' has no OpName() case", false,
                       ""});
      }
      continue;
    }
    op_name_strings.insert(named->second);
    if (doc != nullptr) {
      auto row = doc_ops.find(named->second);
      if (row == doc_ops.end()) {
        out.push_back({kProtocol, doc->path, 1,
                       "op '" + named->second + "' (" + op.name +
                           ") is missing from the PROTOCOL.md op table",
                       false,
                       ""});
      } else if (row->second.first != op.value) {
        out.push_back({kProtocol, doc->path, row->second.second,
                       "op '" + named->second + "' documented as code " +
                           std::to_string(row->second.first) +
                           " but the enum says " + std::to_string(op.value),
                       false,
                       ""});
      }
    }
    if (dispatched.count(op.name) == 0 && !dispatched.empty()) {
      out.push_back({kProtocol, header->path, op.line,
                     "op '" + op.name +
                         "' is never dispatched in memo_server.cc or "
                         "folder_server.cc",
                     false,
                     ""});
    }
  }
  if (doc != nullptr) {
    for (const auto& [name, row] : doc_ops) {
      if (op_name_strings.count(name) == 0 && !op_name_strings.empty()) {
        out.push_back({kProtocol, doc->path, row.second,
                       "PROTOCOL.md documents op '" + name +
                           "' which does not exist in the Op enum",
                       false,
                       ""});
      }
    }
  }

  // --- Encode/decode field order ---------------------------------------
  const FieldGroup groups[] = {
      {"Request",
       "EncodeRequestHead",
       {"Request::EncodeTo", "Request::EncodeToIoBuf"},
       "DecodeRequestBody"},
      {"Response",
       "EncodeResponseHead",
       {"Response::EncodeTo", "Response::EncodeToIoBuf"},
       "DecodeResponseBody"},
  };
  for (const FieldGroup& group : groups) {
    std::vector<std::string> members = StructMembers(hdr, group.struct_name);
    if (members.empty()) {
      out.push_back({kProtocol, header->path, 1,
                     "could not parse struct " + group.struct_name, false,
                     ""});
      continue;
    }
    std::map<std::string, int> decl_index;
    for (std::size_t k = 0; k < members.size(); ++k) {
      decl_index[members[k]] = static_cast<int>(k);
    }
    std::set<std::string> member_set(members.begin(), members.end());

    auto sequence_of = [&](const std::string& fn, std::vector<int>* lines)
        -> std::optional<std::vector<std::string>> {
      std::size_t begin = 0;
      std::size_t end = 0;
      if (!FindFunctionBody(cc.tokens, fn, &begin, &end)) {
        out.push_back({kProtocol, impl->path, 1,
                       "could not locate " + fn + "() definition", false,
                       ""});
        return std::nullopt;
      }
      return MemberSequence(cc.tokens, begin, end, member_set, lines, cc);
    };

    auto check_order = [&](const std::string& fn,
                           const std::vector<std::string>& seq,
                           const std::vector<int>& lines) {
      for (std::size_t k = 1; k < seq.size(); ++k) {
        if (decl_index[seq[k]] < decl_index[seq[k - 1]]) {
          out.push_back({kProtocol, impl->path, lines[k],
                         fn + " touches '" + seq[k] + "' after '" +
                             seq[k - 1] + "', but " + group.struct_name +
                             " declares it earlier — wire field order drift",
                         false,
                         ""});
        }
      }
    };

    std::vector<int> head_lines;
    auto head = sequence_of(group.head_fn, &head_lines);
    if (!head) continue;
    check_order(group.head_fn, *head, head_lines);
    std::set<std::string> head_set(head->begin(), head->end());

    for (const std::string& fn : group.encode_fns) {
      std::vector<int> lines;
      auto seq = sequence_of(fn, &lines);
      if (!seq) continue;
      check_order(fn, *seq, lines);
      std::set<std::string> covered = head_set;
      covered.insert(seq->begin(), seq->end());
      for (const std::string& m : members) {
        if (covered.count(m) == 0) {
          out.push_back({kProtocol, impl->path, 1,
                         fn + " (with " + group.head_fn +
                             ") never encodes field '" + m + "' of " +
                             group.struct_name,
                         false,
                         ""});
        }
      }
    }

    std::vector<int> dec_lines;
    auto dec = sequence_of(group.decode_fn, &dec_lines);
    if (dec) {
      check_order(group.decode_fn, *dec, dec_lines);
      std::set<std::string> covered(dec->begin(), dec->end());
      for (const std::string& m : members) {
        if (covered.count(m) == 0) {
          out.push_back({kProtocol, impl->path, 1,
                         group.decode_fn + " never decodes field '" + m +
                             "' of " + group.struct_name,
                         false,
                         ""});
        }
      }
    }
  }

  ApplyAllowlist(input.sources, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Rule 4: registry drift (env vars + metric names vs docs)
// ---------------------------------------------------------------------------

namespace {

bool IsEnvName(const std::string& s) {
  if (s.rfind("DMEMO_", 0) != 0 || s.size() == 6) return false;
  for (char c : s.substr(6)) {
    if ((c < 'A' || c > 'Z') && (c < '0' || c > '9') && c != '_') return false;
  }
  return true;
}

bool MetricShaped(const std::string& s) {
  static const char* kSuffixes[] = {"_total", "_bytes", "_us",
                                    "_ms",    "_depth", "_seconds"};
  for (const char* suffix : kSuffixes) {
    std::string suf(suffix);
    if (s.size() > suf.size() &&
        s.compare(s.size() - suf.size(), suf.size(), suf) == 0) {
      return true;
    }
  }
  return false;
}

// Expands doc tokens like dmemo_rpc_{frames,bytes}_{sent,received}_total
// (every brace group, recursively); strips label selectors like
// dmemo_transport_dials_total{transport="tcp"}.
void ExpandDocMetric(const std::string& token,
                     std::set<std::string>* names) {
  auto open = token.find('{');
  if (open == std::string::npos) {
    names->insert(token);
    return;
  }
  auto close = token.find('}', open);
  std::string prefix = token.substr(0, open);
  if (close == std::string::npos) {
    names->insert(prefix);
    return;
  }
  std::string inner = token.substr(open + 1, close - open - 1);
  std::string rest = token.substr(close + 1);
  if (inner.find('=') != std::string::npos ||
      inner.find('"') != std::string::npos) {
    names->insert(prefix);  // label selector, not an expansion
    return;
  }
  std::istringstream alts(inner);
  std::string alt;
  while (std::getline(alts, alt, ',')) {
    ExpandDocMetric(prefix + alt + rest, names);
  }
}

}  // namespace

std::vector<Finding> CheckRegistryDrift(const AnalyzeInput& input) {
  std::vector<Finding> out;

  struct Site {
    std::string file;
    int line;
  };
  std::map<std::string, Site> env_reads;           // env name -> first site
  std::map<std::string, Site> metric_regs;         // metric -> first site
  std::map<std::string, std::set<std::string>> metric_types;
  std::set<std::string> src_idents;  // for CMake-option / macro names

  for (const SourceFile& file : input.sources) {
    Lexed lx = Lex(file.content);
    const std::vector<Token>& toks = lx.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == Token::kIdent) {
        if (t.text.rfind("DMEMO_", 0) == 0) src_idents.insert(t.text);
        if ((t.text == "GetCounter" || t.text == "GetGauge" ||
             t.text == "GetHistogram") &&
            i + 2 < toks.size() && toks[i + 1].kind == Token::kPunct &&
            toks[i + 1].text == "(" && toks[i + 2].kind == Token::kString) {
          const std::string& name = toks[i + 2].text;
          metric_regs.emplace(name,
                              Site{file.path, lx.LineOf(toks[i + 2].offset)});
          metric_types[name].insert(t.text);
        }
      } else if (t.kind == Token::kString && IsEnvName(t.text)) {
        env_reads.emplace(t.text, Site{file.path, lx.LineOf(t.offset)});
      }
    }
  }

  std::map<std::string, Site> doc_envs;     // documented env -> first site
  std::map<std::string, Site> doc_metrics;  // documented metric -> first site
  static const std::regex env_re(R"(DMEMO_[A-Z0-9_]+)");
  static const std::regex metric_re(
      R"(dmemo_[a-z0-9_]+(\{[^}\s]*\}[a-z0-9_]*)*)");
  for (const SourceFile& doc : input.docs) {
    std::istringstream in(doc.content);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (auto it = std::sregex_iterator(line.begin(), line.end(), env_re);
           it != std::sregex_iterator(); ++it) {
        doc_envs.emplace(it->str(), Site{doc.path, lineno});
      }
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), metric_re);
           it != std::sregex_iterator(); ++it) {
        std::set<std::string> expanded;
        ExpandDocMetric(it->str(), &expanded);
        for (const std::string& name : expanded) {
          doc_metrics.emplace(name, Site{doc.path, lineno});
        }
      }
    }
  }

  std::set<std::string> doc_env_names;
  for (const auto& [name, site] : doc_envs) doc_env_names.insert(name);
  std::set<std::string> doc_metric_names;
  for (const auto& [name, site] : doc_metrics) doc_metric_names.insert(name);
  std::set<std::string> code_metric_names;
  for (const auto& [name, site] : metric_regs) code_metric_names.insert(name);

  for (const auto& [name, site] : env_reads) {
    if (doc_env_names.count(name) != 0 || input.ignore.count(name) != 0) {
      continue;
    }
    out.push_back({kRegistry, site.file, site.line,
                   "env var '" + name + "' is read here but not documented" +
                       NearMissHint(name, doc_env_names),
                   false,
                   ""});
  }
  for (const auto& [name, site] : doc_envs) {
    if (env_reads.count(name) != 0 || src_idents.count(name) != 0 ||
        input.ignore.count(name) != 0) {
      continue;
    }
    std::set<std::string> code_env_names;
    for (const auto& [n, s] : env_reads) code_env_names.insert(n);
    out.push_back({kRegistry, site.file, site.line,
                   "docs mention env var '" + name +
                       "' but nothing in src reads or defines it" +
                       NearMissHint(name, code_env_names),
                   false,
                   ""});
  }
  for (const auto& [name, site] : metric_regs) {
    if (doc_metric_names.count(name) != 0 || input.ignore.count(name) != 0) {
      continue;
    }
    out.push_back({kRegistry, site.file, site.line,
                   "metric '" + name + "' is registered here but not "
                       "documented" +
                       NearMissHint(name, doc_metric_names),
                   false,
                   ""});
  }
  for (const auto& [name, site] : doc_metrics) {
    if (!MetricShaped(name)) continue;
    if (code_metric_names.count(name) != 0 || input.ignore.count(name) != 0) {
      continue;
    }
    out.push_back({kRegistry, site.file, site.line,
                   "docs mention metric '" + name +
                       "' but no code registers it" +
                       NearMissHint(name, code_metric_names),
                   false,
                   ""});
  }
  for (const auto& [name, types] : metric_types) {
    if (types.size() > 1) {
      std::string list;
      for (const std::string& t : types) {
        if (!list.empty()) list += ", ";
        list += t;
      }
      const Site& site = metric_regs.at(name);
      out.push_back({kRegistry, site.file, site.line,
                     "metric '" + name + "' is registered as multiple types (" +
                         list + ")",
                     false,
                     ""});
    }
  }

  ApplyAllowlist(input.sources, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Rules 5+6: the absorbed check_lint.sh grep gates
// ---------------------------------------------------------------------------

std::vector<Finding> CheckZeroCopy(const AnalyzeInput& input) {
  std::vector<Finding> out;
  static const std::regex flatten_re(
      R"(Bytes\s+[A-Za-z_][A-Za-z0-9_]*\s*=\s*[A-Za-z_][A-Za-z0-9_]*(\.|->)value\b|value\.Flatten\(\))");
  for (const SourceFile& file : input.sources) {
    if (file.path.find("server/") == std::string::npos &&
        file.path.find("transport/") == std::string::npos) {
      continue;
    }
    std::istringstream in(file.content);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (std::regex_search(line, flatten_re)) {
        out.push_back({kZeroCopy, file.path, lineno,
                       "payload flattened on the message path; use IoBuf "
                       "slices (DESIGN.md §11)",
                       false,
                       ""});
      }
    }
  }
  ApplyAllowlist(input.sources, &out);
  return out;
}

std::vector<Finding> CheckWalMutation(const AnalyzeInput& input) {
  std::vector<Finding> out;
  static const std::regex mutate_re(
      R"(directory_(\.|->)(PutDelayed|Put|GetAltSkip|GetAltFor|GetAlt|GetFor|GetSkip|Get|TakeEqual)\()");
  for (const SourceFile& file : input.sources) {
    if (file.path.size() < 16 ||
        file.path.compare(file.path.size() - 16, 16, "folder_server.cc") !=
            0) {
      continue;
    }
    std::istringstream in(file.content);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (std::regex_search(line, mutate_re) &&
          line.find("wal:applied") == std::string::npos) {
        out.push_back({kWal, file.path, lineno,
                       "directory mutation without a 'wal:applied' marker; "
                       "every mutation must be logged before it is applied",
                       false,
                       ""});
      }
    }
  }
  ApplyAllowlist(input.sources, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Rule 7: blocking-in-reactor
//
// The reactor's loop thread multiplexes every connection; one blocking call
// stalls all of them (DESIGN.md §14). Roots are out-of-line `Reactor::`
// method definitions (minus owner-thread lifecycle: constructor/destructor,
// Start, Shutdown — inline-in-class bodies are not tracked; mark those)
// plus any function whose definition line carries an
// `// analyze:reactor-context` marker. From each root the rule walks direct
// calls to other functions defined in the SAME file (the analyzer has no
// cross-TU view) and flags any call to a name from blocking_calls.def in
// the reachable bodies. Lambda bodies are skipped — a lambda built on the
// reactor path typically runs elsewhere (a pool task, a completion
// callback), mirroring WalkGuards' lambda-invisible policy. Escape hatch:
// `// analyze:allow(blocking-in-reactor) <why>`.
// ---------------------------------------------------------------------------

namespace {

struct FunctionDef {
  std::string qualified;  // "Reactor::OnReadable", "Helper"
  std::string simple;     // last :: component
  std::size_t begin = 0;  // token range of the body, [begin, end)
  std::size_t end = 0;
  int line = 0;  // definition line (for the reactor-context marker)
};

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",  "switch",   "catch",        "return",
      "sizeof", "alignof",  "new",    "delete",   "throw",        "decltype",
      "assert", "defined",  "typeid", "co_await", "co_return",    "co_yield",
      "and",    "not",      "or",     "constexpr", "static_assert"};
  return kKeywords.count(s) != 0;
}

// Advances past a balanced token pair starting at *i (toks[*i] must be
// `open`); leaves *i one past the matching close. Returns false on EOF.
bool SkipBalanced(const std::vector<Token>& toks, std::size_t* i,
                  const std::string& open, const std::string& close) {
  int depth = 0;
  for (; *i < toks.size(); ++*i) {
    if (toks[*i].kind != Token::kPunct) continue;
    if (toks[*i].text == open) ++depth;
    if (toks[*i].text == close) {
      --depth;
      if (depth == 0) {
        ++*i;
        return true;
      }
    }
  }
  return false;
}

// Best-effort scan for function definitions: `[Qual::]name ( ... )
// [const|noexcept|override|final]* [: init-list] { body }`. Misses
// trailing-return-type definitions (none in this codebase) and lambdas
// (deliberately: they are call sites' arguments, not reachable bodies).
std::vector<FunctionDef> CollectFunctionDefs(const Lexed& lx) {
  std::vector<FunctionDef> defs;
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent || IsControlKeyword(toks[i].text)) {
      continue;
    }
    if (toks[i + 1].kind != Token::kPunct || toks[i + 1].text != "(") {
      continue;
    }
    // Walk backward over `ident ::` pairs to assemble the qualified name.
    std::size_t first = i;
    while (first >= 2 && toks[first - 1].kind == Token::kPunct &&
           toks[first - 1].text == "::" &&
           toks[first - 2].kind == Token::kIdent) {
      first -= 2;
    }
    std::string qualified;
    for (std::size_t p = first; p <= i; p += 2) {
      if (!qualified.empty()) qualified += "::";
      qualified += toks[p].text;
    }
    std::size_t j = i + 1;
    if (!SkipBalanced(toks, &j, "(", ")")) break;
    while (j < toks.size() && toks[j].kind == Token::kIdent &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final")) {
      ++j;
    }
    // Constructor member-initializer list: `: member(..)|member{..}, ...`.
    if (j < toks.size() && toks[j].kind == Token::kPunct &&
        toks[j].text == ":") {
      ++j;
      bool ok = true;
      while (ok) {
        while (j < toks.size() &&
               (toks[j].kind == Token::kIdent ||
                (toks[j].kind == Token::kPunct && toks[j].text == "::"))) {
          ++j;
        }
        if (j >= toks.size() || toks[j].kind != Token::kPunct) {
          ok = false;
          break;
        }
        if (toks[j].text == "(") {
          if (!SkipBalanced(toks, &j, "(", ")")) ok = false;
        } else if (toks[j].text == "{") {
          if (!SkipBalanced(toks, &j, "{", "}")) ok = false;
        } else {
          ok = false;
          break;
        }
        if (ok && j < toks.size() && toks[j].kind == Token::kPunct &&
            toks[j].text == ",") {
          ++j;
          continue;
        }
        break;
      }
      if (!ok) continue;
    }
    if (j >= toks.size() || toks[j].kind != Token::kPunct ||
        toks[j].text != "{") {
      continue;  // a call or declaration, not a definition
    }
    FunctionDef def;
    def.qualified = qualified;
    def.simple = toks[i].text;
    def.line = lx.LineOf(toks[i].offset);
    def.begin = j + 1;
    std::size_t close = j;
    if (!SkipBalanced(toks, &close, "{", "}")) break;
    def.end = close - 1;
    defs.push_back(def);
    i = j;  // resume inside the body: nested lambdas aren't defs we track
  }
  return defs;
}

// Calls `ident (` inside [begin, end), skipping lambda bodies (they run on
// whatever thread invokes them, not necessarily the reactor's).
void ForEachCall(
    const Lexed& lx, std::size_t begin, std::size_t end,
    const std::function<void(const std::string&, int)>& on_call) {
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == Token::kPunct && toks[i].text == "[") {
      // Lambda introducer? `[...]` followed by `(` or `{`.
      std::size_t j = i;
      if (!SkipBalanced(toks, &j, "[", "]")) return;
      if (j < end && toks[j].kind == Token::kPunct && toks[j].text == "(") {
        if (!SkipBalanced(toks, &j, "(", ")")) return;
        while (j < end && toks[j].kind == Token::kIdent &&
               (toks[j].text == "mutable" || toks[j].text == "noexcept")) {
          ++j;
        }
      }
      if (j < end && toks[j].kind == Token::kPunct && toks[j].text == "{") {
        if (!SkipBalanced(toks, &j, "{", "}")) return;
        i = j - 1;  // resume after the lambda body
        continue;
      }
      i = j - 1;  // array subscript: nothing to skip
      continue;
    }
    if (toks[i].kind != Token::kIdent || IsControlKeyword(toks[i].text)) {
      continue;
    }
    if (i + 1 < toks.size() && toks[i + 1].kind == Token::kPunct &&
        toks[i + 1].text == "(") {
      on_call(toks[i].text, lx.LineOf(toks[i].offset));
    }
  }
}

bool HasReactorContextMarker(const Lexed& lx, int line) {
  for (int l : {line, line - 1}) {
    auto it = lx.comments.find(l);
    if (it != lx.comments.end() &&
        it->second.find("analyze:reactor-context") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> CheckBlockingInReactor(const AnalyzeInput& input) {
  std::vector<Finding> out;
  for (const SourceFile& file : input.sources) {
    Lexed lx = Lex(file.content);
    std::vector<FunctionDef> defs = CollectFunctionDefs(lx);
    if (defs.empty()) continue;
    std::map<std::string, std::vector<std::size_t>> by_simple;
    std::vector<std::size_t> work;
    for (std::size_t idx = 0; idx < defs.size(); ++idx) {
      const FunctionDef& def = defs[idx];
      by_simple[def.simple].push_back(idx);
      bool root = false;
      if (def.qualified.rfind("Reactor::", 0) == 0) {
        // Owner-thread lifecycle is exempt: Start/Shutdown/ctor run (and
        // may block) on the thread that owns the reactor, not its loop.
        root = def.simple != "Reactor" && def.simple != "Start" &&
               def.simple != "Shutdown";
      }
      if (!root) root = HasReactorContextMarker(lx, def.line);
      if (root) work.push_back(idx);
    }
    std::set<std::size_t> visited;
    while (!work.empty()) {
      const std::size_t idx = work.back();
      work.pop_back();
      if (!visited.insert(idx).second) continue;
      const FunctionDef& def = defs[idx];
      ForEachCall(lx, def.begin, def.end,
                  [&](const std::string& callee, int line) {
                    if (input.blocking.count(callee) != 0) {
                      out.push_back(
                          {kReactor, file.path, line,
                           "blocking call '" + callee +
                               "' on the reactor path (reached via '" +
                               def.qualified +
                               "'); move it to a pool task or justify with "
                               "analyze:allow",
                           false,
                           ""});
                    }
                    auto targets = by_simple.find(callee);
                    if (targets != by_simple.end()) {
                      for (std::size_t t : targets->second) work.push_back(t);
                    }
                  });
    }
  }
  ApplyAllowlist(input.sources, &out);
  return out;
}

std::vector<Finding> RunAllRules(const AnalyzeInput& input) {
  std::vector<Finding> out;
  for (auto* rule :
       {CheckLockRank, CheckBlockingUnderLock, CheckProtocolDrift,
        CheckRegistryDrift, CheckZeroCopy, CheckWalMutation,
        CheckBlockingInReactor}) {
    std::vector<Finding> findings = rule(input);
    out.insert(out.end(), findings.begin(), findings.end());
  }
  return out;
}

}  // namespace dmemo::analyze
