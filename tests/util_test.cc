// Unit tests for the util substrate: status, byte buffers, hashing, rng,
// blocking queue, and the thread-caching worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/blocking_queue.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "util/log.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/worker_pool.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

// ---- Status / Result ---------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("folder gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "folder gone");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: folder gone");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<std::string> bad = InternalError("x");
  EXPECT_EQ(std::move(bad).value_or("fallback"), "fallback");
  Result<std::string> good = std::string("real");
  EXPECT_EQ(std::move(good).value_or("fallback"), "real");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgumentError("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  DMEMO_ASSIGN_OR_RETURN(int h, Half(v));
  DMEMO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

// ---- ByteWriter / ByteReader ---------------------------------------------

TEST(BytesTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-17);
  w.i64(-1);
  w.f32(3.5f);
  w.f64(-2.25);
  ByteReader r(w.data());
  EXPECT_EQ(*r.u8(), 0xab);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xdeadbeefu);
  EXPECT_EQ(*r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.i32(), -17);
  EXPECT_EQ(*r.i64(), -1);
  EXPECT_EQ(*r.f32(), 3.5f);
  EXPECT_EQ(*r.f64(), -2.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, BigEndianOnWire) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(BytesTest, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,    1,    127,  128,   300,
                                 1u << 20, ~0ULL, 0x7f, 0x80};
  for (std::uint64_t v : cases) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.data());
    EXPECT_EQ(*r.varint(), v) << v;
  }
}

TEST(BytesTest, VarintOverflowRejected) {
  // 11 bytes of continuation: more than a u64 can hold.
  Bytes bad(11, 0xff);
  ByteReader r(bad);
  EXPECT_EQ(r.varint().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.str("hello folders");
  w.bytes(Bytes{1, 2, 3});
  ByteReader r(w.data());
  EXPECT_EQ(*r.str(), "hello folders");
  EXPECT_EQ(*r.bytes(), (Bytes{1, 2, 3}));
}

TEST(BytesTest, TruncationIsDataLoss) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  ASSERT_TRUE(r.u16().ok());
  ASSERT_TRUE(r.u16().ok());
  EXPECT_EQ(r.u32().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, TruncatedStringIsDataLoss) {
  ByteWriter w;
  w.varint(100);  // promises 100 bytes, delivers none
  ByteReader r(w.data());
  EXPECT_EQ(r.str().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.str("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  ByteReader r(w.data());
  EXPECT_EQ(*r.u32(), w.size());
}

TEST(BytesTest, PatchU32OutOfRangeIsRejected) {
  // Regression: patch_u32 used to trust the offset and write past the end
  // of the buffer. An offset whose 4 bytes don't fit must die in debug
  // builds and leave the buffer untouched in release builds.
  ByteWriter w;
  w.u32(0xdeadbeef);
  EXPECT_DEBUG_DEATH(w.patch_u32(1, 7), "");   // 1 + 4 > 4
  EXPECT_DEBUG_DEATH(w.patch_u32(100, 7), "");  // far past the end
#ifdef NDEBUG
  // Release build: the calls above were clamped to no-ops.
  ByteReader r(w.data());
  EXPECT_EQ(*r.u32(), 0xdeadbeefu);
#endif
}

TEST(BytesTest, PatchU32AtExactEndBoundary) {
  ByteWriter w;
  w.u32(0);
  w.u32(0);
  w.patch_u32(4, 42);  // offset + 4 == size(): legal
  ByteReader r(w.data());
  EXPECT_EQ(*r.u32(), 0u);
  EXPECT_EQ(*r.u32(), 42u);
}

TEST(BytesTest, ChunkedWriterSealsAndDrains) {
  ByteWriter w(8);  // seal every 8 bytes
  for (int i = 0; i < 5; ++i) w.u64(static_cast<std::uint64_t>(i));
  EXPECT_EQ(w.size(), 40u);
  std::vector<Bytes> chunks = w.TakeChunks();
  ASSERT_EQ(chunks.size(), 5u);
  Bytes flat;
  for (const Bytes& c : chunks) {
    EXPECT_EQ(c.size(), 8u);
    flat.insert(flat.end(), c.begin(), c.end());
  }
  ByteReader r(flat);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*r.u64(), static_cast<std::uint64_t>(i));
  // The writer is reset after draining.
  EXPECT_EQ(w.size(), 0u);
  w.u8(9);
  auto again = w.TakeChunks();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], Bytes{9});
}

TEST(BytesTest, ChunkedWriterMatchesPlainEncoding) {
  // Byte stream is identical regardless of chunk size — the wire format
  // cannot depend on the writer's internal chunking.
  auto encode = [](ByteWriter& w) {
    w.u8(3);
    w.str("some moderately long string to cross chunk boundaries");
    w.varint(1u << 20);
    w.u64(0x0102030405060708ull);
    Bytes blob(300, 0xab);
    w.bytes(blob);
  };
  ByteWriter plain;
  encode(plain);
  for (std::size_t chunk : {1u, 7u, 64u, 4096u}) {
    ByteWriter chunked(chunk);
    encode(chunked);
    Bytes flat;
    for (const Bytes& c : chunked.TakeChunks()) {
      flat.insert(flat.end(), c.begin(), c.end());
    }
    EXPECT_EQ(flat, plain.data()) << "chunk_bytes=" << chunk;
  }
}

TEST(BytesTest, ChunkedWriterPatchU32CrossesChunks) {
  ByteWriter w(2);  // tiny chunks: the patched u32 spans chunk boundaries
  w.u32(0);
  w.str("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  Bytes flat;
  for (const Bytes& c : w.TakeChunks()) {
    flat.insert(flat.end(), c.begin(), c.end());
  }
  ByteReader r(flat);
  EXPECT_EQ(*r.u32(), flat.size());
  EXPECT_EQ(*r.str(), "payload");
}

TEST(BytesTest, ReaderSkipAdvancesWithBoundsCheck) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  ByteReader r(w.data());
  EXPECT_TRUE(r.skip(2).ok());
  EXPECT_EQ(*r.u8(), 3);
  EXPECT_EQ(r.skip(1).code(), StatusCode::kDataLoss);
}

TEST(BytesTest, HexEncode) {
  EXPECT_EQ(HexEncode(Bytes{0x00, 0xff, 0x1a}), "00ff1a");
}

// ---- logging ---------------------------------------------------------------

TEST(LogTest, LevelThresholdIsRespected) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold lines are discarded without evaluating the stream; an
  // above-threshold line is emitted (we can only check it doesn't crash).
  DMEMO_LOG(kDebug) << "discarded";
  DMEMO_LOG(kError) << "emitted to stderr";
  SetLogLevel(before);
}

// ---- hashing / rng -------------------------------------------------------

TEST(HashTest, Fnv1aIsDeterministicAndSpread) {
  EXPECT_EQ(Fnv1a64("folder"), Fnv1a64("folder"));
  EXPECT_NE(Fnv1a64("folder"), Fnv1a64("folder2"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(HashTest, HashToUnitInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = HashToUnit(rng.Next());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBelowStaysBelow) {
  SplitMix64 rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, DeterministicPerSeed) {
  SplitMix64 a(5), b(5), c(6);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextBelowCoversAllResidues) {
  SplitMix64 rng(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBelow(4));
  EXPECT_EQ(seen.size(), 4u);
}

// ---- BlockingQueue -------------------------------------------------------

TEST(BlockingQueueTest, FifoWithinQueue) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    q.Close();
  });
  EXPECT_FALSE(q.Pop().has_value());
  t.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.Push(9));
  q.Close();
  EXPECT_FALSE(q.Push(10));
  EXPECT_EQ(*q.Pop(), 9);
  EXPECT_FALSE(q.Pop().has_value());
}

// A Push blocked on a full bounded queue must fail cleanly when Close()
// arrives, and its closed-path notify must let concurrent poppers observe
// closure (regression test for Push losing the race against Close and
// leaving not_empty_ waiters asleep).
TEST(BlockingQueueTest, PushBlockedAtCloseFailsAndWakesPoppers) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));

  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread pusher([&] {
    push_result = q.Push(2);  // blocks: queue is at capacity
    push_returned = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(push_returned.load());

  std::optional<int> popped;
  std::thread popper([&] {
    popped = q.Pop();              // drains the remaining item
    while (q.Pop().has_value()) {  // then observes closure, not a hang
    }
  });

  q.Close();
  pusher.join();
  popper.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());  // the blocked push must report closure
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, BoundedBlocksProducer) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread t([&] {
    EXPECT_TRUE(q.Push(2));
    second_pushed = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  t.join();
  EXPECT_TRUE(second_pushed.load());
}

// ---- WorkerPool ----------------------------------------------------------

TEST(WorkerPoolTest, ExecutesSubmittedTasks) {
  WorkerPool pool;
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { n.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(n.load(), 100);
}

TEST(WorkerPoolTest, ThreadCachingReusesThreads) {
  WorkerPool::Options opts;
  opts.cache_ttl = 500ms;
  WorkerPool pool(opts);
  // Sequential tasks: after the first, a cached thread should pick up.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([] {}));
    pool.Drain();
  }
  auto stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_executed, 20u);
  EXPECT_LT(stats.threads_spawned, 20u);  // caching kicked in
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(WorkerPoolTest, CachingDisabledSpawnsPerRequest) {
  WorkerPool::Options opts;
  opts.cache_ttl = 0ms;  // the paper's non-cached baseline
  WorkerPool pool(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([] {}));
    pool.Drain();
    // Let the finished thread exit before the next submit.
    std::this_thread::sleep_for(1ms);
  }
  auto stats = pool.GetStats();
  EXPECT_EQ(stats.tasks_executed, 10u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_GE(stats.threads_spawned, 10u);
}

TEST(WorkerPoolTest, IdleThreadsExpireAfterTtl) {
  WorkerPool::Options opts;
  opts.cache_ttl = 20ms;
  WorkerPool pool(opts);
  ASSERT_TRUE(pool.Submit([] {}));
  pool.Drain();
  std::this_thread::sleep_for(150ms);
  auto stats = pool.GetStats();
  EXPECT_EQ(stats.live_threads, 0u);
  EXPECT_EQ(stats.threads_expired, 1u);
}

TEST(WorkerPoolTest, MaxThreadsQueuesExcess) {
  WorkerPool::Options opts;
  opts.max_threads = 2;
  WorkerPool pool(opts);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      int cur = running.fetch_add(1) + 1;
      int expect = peak.load();
      while (cur > expect && !peak.compare_exchange_weak(expect, cur)) {
      }
      std::this_thread::sleep_for(10ms);
      running.fetch_sub(1);
      done.fetch_add(1);
    }));
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 8);
  EXPECT_LE(peak.load(), 2);
}

TEST(WorkerPoolTest, SubmitAfterShutdownFails) {
  WorkerPool pool;
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(WorkerPoolTest, ShutdownRunsQueuedWork) {
  WorkerPool::Options opts;
  opts.max_threads = 1;
  WorkerPool pool(opts);
  std::atomic<int> n{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      std::this_thread::sleep_for(5ms);
      n.fetch_add(1);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(n.load(), 5);
}

// ---- retry backoff and deadline budgets --------------------------------

TEST(RetryTest, BackoffGrowsThenSaturatesAtMax) {
  RetryPolicy policy;
  policy.initial_backoff = 10ms;
  policy.max_backoff = 80ms;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  SplitMix64 rng(1);
  EXPECT_EQ(policy.BackoffFor(1, rng), 10ms);
  EXPECT_EQ(policy.BackoffFor(2, rng), 20ms);
  EXPECT_EQ(policy.BackoffFor(3, rng), 40ms);
  EXPECT_EQ(policy.BackoffFor(4, rng), 80ms);
  EXPECT_EQ(policy.BackoffFor(5, rng), 80ms);
}

TEST(RetryTest, ExtremeAttemptCountsStayFiniteAndClamped) {
  // The overflow regression: growing the backoff for all N attempts and
  // clamping once at the end overflows the double to inf around attempt
  // ~1000 (2^1000 × 10ms), and casting inf to an integer count is UB —
  // observed as a negative sleep. The clamp must run inside the loop.
  RetryPolicy policy;
  policy.initial_backoff = 10ms;
  policy.max_backoff = 5000ms;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  SplitMix64 rng(7);
  for (int attempt : {100, 1000, 10'000, 1'000'000}) {
    const auto backoff = policy.BackoffFor(attempt, rng);
    EXPECT_GE(backoff, 0ms) << "attempt " << attempt;
    EXPECT_LE(backoff, policy.max_backoff) << "attempt " << attempt;
  }
  // With jitter the clamp must still hold on both sides.
  policy.jitter = 0.5;
  for (int i = 0; i < 100; ++i) {
    const auto backoff = policy.BackoffFor(1000, rng);
    EXPECT_GE(backoff, 0ms);
    EXPECT_LE(backoff, policy.max_backoff);
  }
}

TEST(RetryTest, RemainingBudgetExpiredYieldsNulloptNotWraparound) {
  // The restamp regression: computing `deadline - now` after the deadline
  // passed and casting the negative remainder to u32 wraps to ~49 days —
  // the retry loop then stamps a nearly-infinite per-attempt budget on the
  // wire. An expired deadline must read as "no budget", never a huge one.
  using clock = std::chrono::steady_clock;
  const auto now = clock::now();
  EXPECT_FALSE(RemainingBudgetMs(now, now).has_value());
  EXPECT_FALSE(RemainingBudgetMs(now, now - 1ms).has_value());
  EXPECT_FALSE(RemainingBudgetMs(now, now - 1h).has_value());
  // A sub-millisecond remainder truncates to 0 — also expired, not a
  // zero-meaning-unbounded wire stamp.
  EXPECT_FALSE(RemainingBudgetMs(now, now + std::chrono::microseconds(300))
                   .has_value());
  auto budget = RemainingBudgetMs(now, now + 250ms);
  ASSERT_TRUE(budget.has_value());
  EXPECT_EQ(*budget, 250u);
  // Saturation: a deadline beyond u32 milliseconds clamps instead of
  // wrapping.
  auto huge = RemainingBudgetMs(now, now + std::chrono::hours(24 * 365));
  ASSERT_TRUE(huge.has_value());
  EXPECT_EQ(*huge, 0xffffffffu);
}

TEST(WorkerPoolTest, ConcurrentSubmitters) {
  WorkerPool pool;
  std::atomic<int> n{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        EXPECT_TRUE(pool.Submit([&] { n.fetch_add(1); }));
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Drain();
  EXPECT_EQ(n.load(), 1000);
}

}  // namespace
}  // namespace dmemo
