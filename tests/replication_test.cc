// Tests for the replication + membership layer (DESIGN.md §15): the wire
// codecs, the SWIM membership state machine, the standby apply protocol
// (epoch fencing, duplicate suffixes, sequence gaps), semisync/async
// shipping through real servers over a simulated network, automatic
// standby promotion, and the SWIM per-node load bound.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adf/adf.h"
#include "folder/directory.h"
#include "folder/key.h"
#include "server/gossip.h"
#include "server/memo_server.h"
#include "server/replication.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

Bytes Encoded(int v) { return EncodeGraphToBytes(MakeInt32(v)); }

int Decoded(const IoBuf& b) {
  auto v = DecodeGraphFromBytes(b);
  EXPECT_TRUE(v.ok());
  return std::static_pointer_cast<TInt32>(*v)->value();
}

// ---- codecs -------------------------------------------------------------

TEST(ReplCodecTest, SnapshotRoundTrip) {
  ReplSnapshotPayload p;
  p.fs_id = 3;
  p.primary_host = "bonnie";
  p.epoch = 7;
  p.watermark = 41;
  p.snapshot = Bytes{1, 2, 3, 4};
  auto got = DecodeReplSnapshot(EncodeReplSnapshot(p));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->fs_id, 3);
  EXPECT_EQ(got->primary_host, "bonnie");
  EXPECT_EQ(got->epoch, 7u);
  EXPECT_EQ(got->watermark, 41u);
  EXPECT_EQ(got->snapshot, (Bytes{1, 2, 3, 4}));
}

TEST(ReplCodecTest, AppendRoundTrip) {
  ReplAppendPayload p;
  p.fs_id = 1;
  p.primary_host = "clyde";
  p.epoch = 2;
  for (std::uint64_t seq = 5; seq < 8; ++seq) {
    ReplRecord r;
    r.seq = seq;
    r.record.op = static_cast<std::uint8_t>(Op::kPut);
    r.record.request_id = 100 + seq;
    r.record.key = QualifiedKey{"app", Key::Named("k", {7})}.ToBytes();
    r.record.payload = IoBuf(Encoded(static_cast<int>(seq)));
    p.records.push_back(std::move(r));
  }
  auto got = DecodeReplAppend(EncodeReplAppend(p));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->fs_id, 1);
  EXPECT_EQ(got->epoch, 2u);
  ASSERT_EQ(got->records.size(), 3u);
  EXPECT_EQ(got->records[0].seq, 5u);
  EXPECT_EQ(got->records[2].record.request_id, 107u);
  EXPECT_EQ(Decoded(got->records[1].record.payload), 6);
}

TEST(ReplCodecTest, CorruptPayloadRejected) {
  // A truncated / garbage frame must fail decode, not crash or misparse.
  EXPECT_FALSE(DecodeReplSnapshot(IoBuf(Bytes{0xff, 0x01})).ok());
  EXPECT_FALSE(DecodeReplAppend(IoBuf(Bytes{0x42})).ok());
  EXPECT_FALSE(DecodeReplAppend(IoBuf()).ok());
}

TEST(GossipCodecTest, MessageRoundTrip) {
  GossipMessage msg;
  msg.kind = "ping-req";
  msg.host = "alpha";
  msg.subject = "gamma";
  msg.incarnation = 9;
  msg.reached = true;
  msg.updates.push_back(MemberUpdate{"beta", 4, MemberState::kSuspect});
  msg.updates.push_back(MemberUpdate{"gamma", 2, MemberState::kDead});
  msg.folder_servers.push_back(GossipFolderInfo{2, 5, 128});
  msg.owners.push_back(OwnershipClaim{2, "alpha", 5});
  auto got = ParseGossipMessage(EncodeGossipMessage(msg));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->kind, "ping-req");
  EXPECT_EQ(got->host, "alpha");
  EXPECT_EQ(got->subject, "gamma");
  EXPECT_EQ(got->incarnation, 9u);
  EXPECT_TRUE(got->reached);
  ASSERT_EQ(got->updates.size(), 2u);
  EXPECT_EQ(got->updates[0].host, "beta");
  EXPECT_EQ(got->updates[0].state, MemberState::kSuspect);
  EXPECT_EQ(got->updates[1].incarnation, 2u);
  ASSERT_EQ(got->folder_servers.size(), 1u);
  EXPECT_EQ(got->folder_servers[0].epoch, 5u);
  ASSERT_EQ(got->owners.size(), 1u);
  EXPECT_EQ(got->owners[0].host, "alpha");
}

// ---- SWIM membership state machine --------------------------------------

MemberView ViewOf(GossipMembership& g, const std::string& host) {
  for (const MemberView& v : g.Snapshot()) {
    if (v.host == host) return v;
  }
  ADD_FAILURE() << "no member " << host;
  return MemberView{};
}

TEST(GossipMembershipTest, MissesSuspectThenDead) {
  GossipMembership g("self", /*suspect_misses=*/2);
  g.AddPeer("peer");
  g.OnProbeMiss("peer");
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kSuspect);
  g.OnProbeMiss("peer");
  auto dead = g.Tick();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "peer");
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kDead);
  // A death is reported exactly once.
  EXPECT_TRUE(g.Tick().empty());
}

TEST(GossipMembershipTest, SuspicionAgesToDeathWithoutFurtherProbes) {
  GossipMembership g("self", /*suspect_misses=*/2);
  g.AddPeer("peer");
  g.OnProbeMiss("peer");  // suspect at one miss
  // Unrefuted suspicion dies after 2 x suspect_misses protocol periods
  // even if the prober never reaches it again.
  std::vector<std::string> dead;
  for (int i = 0; i < 2 * 2 + 1 && dead.empty(); ++i) dead = g.Tick();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "peer");
}

TEST(GossipMembershipTest, AckRefutesSuspicion) {
  GossipMembership g("self", /*suspect_misses=*/3);
  g.AddPeer("peer");
  g.OnProbeMiss("peer");
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kSuspect);
  // Direct liveness evidence at an equal incarnation clears the suspicion.
  g.OnProbeSuccess("peer", ViewOf(g, "peer").incarnation);
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kAlive);
  EXPECT_EQ(ViewOf(g, "peer").misses, 0);
}

TEST(GossipMembershipTest, SelfSuspectRumorBumpsIncarnation) {
  GossipMembership g("self", 2);
  g.AddPeer("peer");
  const std::uint64_t inc = g.self_incarnation();
  g.ApplyUpdates({MemberUpdate{"self", inc, MemberState::kSuspect}});
  // Only the member itself may bump its incarnation — and it just did, to
  // refute the rumor.
  EXPECT_GT(g.self_incarnation(), inc);
  auto piggyback = g.PiggybackUpdates();
  ASSERT_FALSE(piggyback.empty());
  EXPECT_EQ(piggyback[0].host, "self");
  EXPECT_EQ(piggyback[0].state, MemberState::kAlive);
  EXPECT_EQ(piggyback[0].incarnation, g.self_incarnation());
}

TEST(GossipMembershipTest, HigherIncarnationAliveOverridesSuspect) {
  GossipMembership g("self", 2);
  g.AddPeer("peer");
  g.OnProbeMiss("peer");
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kSuspect);
  const std::uint64_t inc = ViewOf(g, "peer").incarnation;
  // alive{i} overrides suspect{j} only for i > j.
  g.ApplyUpdates({MemberUpdate{"peer", inc + 1, MemberState::kAlive}});
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kAlive);
  EXPECT_EQ(ViewOf(g, "peer").incarnation, inc + 1);
}

TEST(GossipMembershipTest, StaleAliveDoesNotClearSuspicion) {
  GossipMembership g("self", 2);
  g.AddPeer("peer");
  g.OnProbeMiss("peer");
  const std::uint64_t inc = ViewOf(g, "peer").incarnation;
  // A piggybacked alive claim at the same incarnation is older news than
  // the suspicion and must not override it (SWIM's override rule — only
  // the member's own ack clears at an equal incarnation).
  g.ApplyUpdates({MemberUpdate{"peer", inc, MemberState::kAlive}});
  EXPECT_EQ(ViewOf(g, "peer").state, MemberState::kSuspect);
}

TEST(GossipMembershipTest, DeadUpdateReportsDeathOnce) {
  GossipMembership g("self", 2);
  g.AddPeer("peer");
  auto dead = g.ApplyUpdates({MemberUpdate{"peer", 1, MemberState::kDead}});
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "peer");
  EXPECT_TRUE(
      g.ApplyUpdates({MemberUpdate{"peer", 1, MemberState::kDead}}).empty());
}

TEST(GossipMembershipTest, RoundRobinProbesEveryLiveMemberPerCycle) {
  GossipMembership g("self", 2);
  g.AddPeer("a");
  g.AddPeer("b");
  g.AddPeer("c");
  g.ApplyUpdates({MemberUpdate{"c", 1, MemberState::kDead}});
  SplitMix64 rng(42);
  // Two full cycles over the live members: every live member exactly
  // twice, the dead one never.
  std::unordered_map<std::string, int> hits;
  for (int i = 0; i < 4; ++i) ++hits[g.NextProbeTarget(rng)];
  EXPECT_EQ(hits["a"], 2);
  EXPECT_EQ(hits["b"], 2);
  EXPECT_EQ(hits.count("c"), 0u);
}

TEST(GossipMembershipTest, IndirectCandidatesExcludeTargetAndDead) {
  GossipMembership g("self", 2);
  g.AddPeer("a");
  g.AddPeer("b");
  g.AddPeer("c");
  g.ApplyUpdates({MemberUpdate{"b", 1, MemberState::kDead}});
  SplitMix64 rng(7);
  auto relays = g.IndirectCandidates(5, /*exclude=*/"a", rng);
  ASSERT_EQ(relays.size(), 1u);
  EXPECT_EQ(relays[0], "c");
}

// ---- standby apply protocol ---------------------------------------------

// Drives the kReplSnapshot / kReplAppend handlers of a single backup
// server with hand-crafted streams: the torn-tail, epoch-regression and
// backup-ahead rejections from ISSUE 10's satellite checklist.
class StandbyProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
    MemoServerOptions opts;
    opts.host = "bak";
    opts.listen_url = "sim://bak";
    opts.peers = {{"bak", "sim://bak"}};
    opts.heartbeat_interval = 0ms;  // failure detector off: protocol only
    auto server = MemoServer::Start(transport_, opts);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
    auto conn = transport_->Dial("sim://bak");
    ASSERT_TRUE(conn.ok()) << conn.status();
    channel_ = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  }

  void TearDown() override {
    channel_->Close();
    server_->Shutdown();
  }

  StatusCode Snapshot(int fs_id, std::uint64_t epoch,
                      std::uint64_t watermark = 0) {
    ReplSnapshotPayload p;
    p.fs_id = fs_id;
    p.primary_host = "pri";
    p.epoch = epoch;
    p.watermark = watermark;
    FolderDirectory<IoBuf> empty;
    ByteWriter w;
    empty.SnapshotTo(w);
    p.snapshot = w.take();
    Request req;
    req.op = Op::kReplSnapshot;
    req.value = EncodeReplSnapshot(p);
    auto resp = channel_->Call(req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return resp->code;
  }

  StatusCode Append(int fs_id, std::uint64_t epoch, std::uint64_t seq,
                    std::uint64_t request_id = 0) {
    ReplAppendPayload p;
    p.fs_id = fs_id;
    p.primary_host = "pri";
    p.epoch = epoch;
    ReplRecord r;
    r.seq = seq;
    r.record.op = static_cast<std::uint8_t>(Op::kPut);
    r.record.request_id = request_id;
    r.record.key =
        QualifiedKey{"r", Key::Named("k", {static_cast<std::uint32_t>(seq)})}
            .ToBytes();
    r.record.payload = IoBuf(Encoded(static_cast<int>(seq)));
    p.records.push_back(std::move(r));
    Request req;
    req.op = Op::kReplAppend;
    req.value = EncodeReplAppend(p);
    auto resp = channel_->Call(req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return resp->code;
  }

  MemoServer::StandbyView View(int fs_id) {
    for (const auto& v : server_->standby_views()) {
      if (v.fs_id == fs_id) return v;
    }
    ADD_FAILURE() << "no standby for fs " << fs_id;
    return {};
  }

  SimNetworkPtr network_;
  TransportPtr transport_;
  std::unique_ptr<MemoServer> server_;
  RpcChannelPtr channel_;
};

TEST_F(StandbyProtocolTest, BackupAheadRejectsStaleSnapshot) {
  ASSERT_EQ(Snapshot(0, /*epoch=*/5), StatusCode::kOk);
  // A stale primary (lower epoch) must be fenced off permanently...
  EXPECT_EQ(Snapshot(0, /*epoch=*/3), StatusCode::kFailedPrecondition);
  // ...but the same epoch may re-bootstrap (shipper restart), and a
  // recovered primary at a higher epoch replaces the standby.
  EXPECT_EQ(Snapshot(0, /*epoch=*/5), StatusCode::kOk);
  EXPECT_EQ(Snapshot(0, /*epoch=*/6), StatusCode::kOk);
  EXPECT_EQ(View(0).epoch, 6u);
}

TEST_F(StandbyProtocolTest, AppendEpochFencing) {
  ASSERT_EQ(Snapshot(0, /*epoch=*/5), StatusCode::kOk);
  // Zombie pre-failover primary: permanent fence.
  EXPECT_EQ(Append(0, /*epoch=*/4, /*seq=*/1),
            StatusCode::kFailedPrecondition);
  // Recovered primary in a newer epoch: its stream restarted, so the
  // standby asks for a fresh snapshot instead of applying blind.
  EXPECT_EQ(Append(0, /*epoch=*/6, /*seq=*/1), StatusCode::kNotFound);
  // Matching epoch applies.
  EXPECT_EQ(Append(0, /*epoch=*/5, /*seq=*/1), StatusCode::kOk);
  EXPECT_EQ(View(0).next_seq, 2u);
}

TEST_F(StandbyProtocolTest, AppendWithoutSnapshotRequiresBootstrap) {
  EXPECT_EQ(Append(9, /*epoch=*/1, /*seq=*/1), StatusCode::kNotFound);
}

TEST_F(StandbyProtocolTest, DuplicateSuffixIsIdempotentAndGapsReject) {
  ASSERT_EQ(Snapshot(0, /*epoch=*/2, /*watermark=*/3), StatusCode::kOk);
  EXPECT_EQ(View(0).next_seq, 4u);
  // Records at or below the watermark are duplicates of the applied
  // prefix (retransmitted shipped tail): accepted, not re-applied.
  EXPECT_EQ(Append(0, 2, /*seq=*/3), StatusCode::kOk);
  EXPECT_EQ(View(0).next_seq, 4u);
  EXPECT_EQ(Append(0, 2, /*seq=*/4), StatusCode::kOk);
  EXPECT_EQ(Append(0, 2, /*seq=*/4), StatusCode::kOk);  // retransmit
  EXPECT_EQ(View(0).next_seq, 5u);
  // A torn shipped tail (gap in the stream) must force a re-bootstrap —
  // applying past it would silently diverge from the primary.
  EXPECT_EQ(Append(0, 2, /*seq=*/7), StatusCode::kOutOfRange);
  EXPECT_EQ(View(0).next_seq, 5u);
}

// ---- shipping through real servers --------------------------------------

// Two/three-server farm with per-host persistence directories and
// replication enabled — the in-process version of the chaos failover run.
class ReplFarmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = "/tmp/dmemo_repl_" + std::to_string(::getpid()) + "_" +
           info->name();
    ::mkdir(dir_.c_str(), 0755);
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
  }

  void TearDown() override {
    for (auto& [name, server] : servers_) server->Shutdown();
    std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  void StartFarm(const std::vector<std::string>& hosts, ReplMode mode,
                 std::chrono::milliseconds gossip_interval,
                 const std::string& adf_text) {
    for (const auto& h : hosts) peers_[h] = "sim://" + h;
    auto parsed = ParseAdf(adf_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    adf_ = parsed->description;
    for (const auto& h : hosts) {
      MemoServerOptions opts;
      opts.host = h;
      opts.listen_url = peers_[h];
      opts.peers = peers_;
      opts.persist_dir = dir_ + "/" + h;
      ::mkdir(opts.persist_dir.c_str(), 0755);
      opts.heartbeat_interval = gossip_interval;
      opts.heartbeat_misses = 2;
      opts.repl_mode = mode;
      auto server = MemoServer::Start(transport_, opts);
      ASSERT_TRUE(server.ok()) << server.status();
      servers_[h] = std::move(*server);
      ASSERT_TRUE(servers_[h]->RegisterApp(adf_).ok());
    }
  }

  RpcChannelPtr Connect(const std::string& host) {
    auto conn = transport_->Dial("sim://" + host);
    EXPECT_TRUE(conn.ok()) << conn.status();
    return RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  }

  // Acked put of key r/k{i} = i through `channel`.
  void Put(const RpcChannelPtr& channel, int i, std::uint64_t request_id) {
    Request req;
    req.op = Op::kPut;
    req.app = "r";
    req.request_id = request_id;
    req.key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    req.value = Encoded(i);
    auto resp = channel->Call(req);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  }

  std::string dir_;
  SimNetworkPtr network_;
  TransportPtr transport_;
  std::unordered_map<std::string, std::string> peers_;
  AppDescription adf_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
};

constexpr const char* kPairAdf =
    "APP r\nHOSTS\nrepA 1 t 1\nrepB 1 t 1\n"
    "FOLDERS\n0 repA\nPPC\nrepA <-> repB 1\n";

TEST_F(ReplFarmTest, SemisyncAckImpliesStandbyCaughtUp) {
  StartFarm({"repA", "repB"}, ReplMode::kSemiSync, 0ms, kPairAdf);
  auto a = Connect("repA");
  const int kN = 10;
  for (int i = 0; i < kN; ++i) Put(a, i, 9000 + i);
  // Semisync: every acked mutation is already applied on the backup, so
  // the standby watermark is exact the moment the last ack returns.
  auto views = servers_.at("repB")->standby_views();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].fs_id, 0);
  EXPECT_EQ(views[0].primary_host, "repA");
  EXPECT_EQ(views[0].epoch, servers_.at("repA")->folder_server(0)->epoch());
  EXPECT_EQ(views[0].next_seq, static_cast<std::uint64_t>(kN) + 1);
  a->Close();
}

TEST_F(ReplFarmTest, AsyncShipsEventually) {
  StartFarm({"repA", "repB"}, ReplMode::kAsync, 0ms, kPairAdf);
  auto a = Connect("repA");
  const int kN = 10;
  for (int i = 0; i < kN; ++i) Put(a, i, 9100 + i);
  // Async acks don't wait for the backup; the stream catches up shortly.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  bool caught_up = false;
  while (!caught_up && std::chrono::steady_clock::now() < deadline) {
    for (const auto& v : servers_.at("repB")->standby_views()) {
      if (v.fs_id == 0 && v.next_seq == static_cast<std::uint64_t>(kN) + 1) {
        caught_up = true;
      }
    }
    if (!caught_up) std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(caught_up);
  a->Close();
}

constexpr const char* kTrioAdf =
    "APP r\nHOSTS\npromA 1 t 1\npromB 1 t 1\npromC 1 t 1\n"
    "FOLDERS\n0 promA\n"
    "PPC\npromA <-> promB 1\npromB <-> promC 1\npromA <-> promC 1\n";

TEST_F(ReplFarmTest, BackupPromotesServesAckedMemosAndFencesStaleEpoch) {
  // Ring successor of promA (sorted hosts) is promB: the standby lives
  // there and must take over when promA dies.
  StartFarm({"promA", "promB", "promC"}, ReplMode::kSemiSync, 25ms, kTrioAdf);
  auto a = Connect("promA");
  const int kN = 8;
  for (int i = 0; i < kN; ++i) Put(a, i, 9200 + i);
  a->Close();
  const std::uint64_t old_epoch =
      servers_.at("promA")->folder_server(0)->epoch();

  // Hard-stop the primary (in-process stand-in for SIGKILL; the
  // process-level version lives in crash_recovery_test.cc).
  servers_.at("promA")->Shutdown();

  // The SWIM detector declares promA dead and promB promotes its warm
  // standby — no operator, no restart.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool promoted = false;
  while (!promoted && std::chrono::steady_clock::now() < deadline) {
    for (int id : servers_.at("promB")->folder_server_ids()) {
      if (id == 0) promoted = true;
    }
    if (!promoted) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(promoted) << "standby never promoted";

  // Deterministic fencing: standby epoch + 2 lands strictly above both
  // the dead primary and any plain restart of it.
  const std::uint64_t new_epoch =
      servers_.at("promB")->folder_server(0)->epoch();
  EXPECT_GE(new_epoch, old_epoch + 2);

  // A zombie client pinned to the pre-failover epoch is rejected.
  auto b = Connect("promB");
  Request stale;
  stale.op = Op::kPut;
  stale.app = "r";
  stale.epoch = old_epoch;
  stale.key = Key::Named("k", {99});
  stale.value = Encoded(99);
  auto fenced = b->Call(stale);
  ASSERT_TRUE(fenced.ok()) << fenced.status();
  EXPECT_EQ(fenced->code, StatusCode::kFailedPrecondition) << fenced->message;

  // promC re-routes through the gossiped ownership claim: poll until its
  // view of fs 0 points at promB, then read every acked memo back.
  auto c = Connect("promC");
  Request count;
  count.op = Op::kCount;
  count.app = "r";
  count.key = Key::Named("k", {0});
  bool routed = false;
  while (!routed && std::chrono::steady_clock::now() < deadline) {
    auto resp = c->Call(count);
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->code == StatusCode::kOk && resp->count == 1) routed = true;
    if (!routed) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(routed) << "promC never re-routed to the new owner";
  for (int i = 0; i < kN; ++i) {
    Request get;
    get.op = Op::kGet;
    get.app = "r";
    get.key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    auto resp = c->Call(get);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    ASSERT_TRUE(resp->has_value);
    EXPECT_EQ(Decoded(resp->value), i);
  }
  // The promotion showed up in the failover metric.
  EXPECT_GE(MetricsRegistry::Global()
                .GetCounter("dmemo_failover_total", "fs=\"0@promB\"")
                ->Value(),
            1u);
  b->Close();
  c->Close();
}

// ---- membership over a farm ---------------------------------------------

// App-less gossip farm: membership only, no folders, no persistence.
class GossipFarm {
 public:
  GossipFarm(const std::vector<std::string>& hosts,
             std::chrono::milliseconds interval) {
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
    std::unordered_map<std::string, std::string> peers;
    for (const auto& h : hosts) peers[h] = "sim://" + h;
    for (const auto& h : hosts) {
      MemoServerOptions opts;
      opts.host = h;
      opts.listen_url = peers[h];
      opts.peers = peers;
      opts.heartbeat_interval = interval;
      opts.heartbeat_misses = 2;
      auto server = MemoServer::Start(transport_, opts);
      EXPECT_TRUE(server.ok()) << server.status();
      servers_[h] = std::move(*server);
    }
  }

  ~GossipFarm() {
    for (auto& [name, server] : servers_) server->Shutdown();
  }

  MemoServer& at(const std::string& host) { return *servers_.at(host); }

  bool Sees(const std::string& host, const std::string& subject,
            MemberState state) {
    for (const MemberView& v : servers_.at(host)->gossip_members()) {
      if (v.host == subject && v.state == state) return true;
    }
    return false;
  }

 private:
  SimNetworkPtr network_;
  TransportPtr transport_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
};

TEST(GossipFarmTest, FiveServersConvergeOnDeathInBoundedPeriods) {
  const std::vector<std::string> hosts = {"g0", "g1", "g2", "g3", "g4"};
  GossipFarm farm(hosts, 25ms);
  farm.at("g0").Shutdown();
  // SWIM bound: suspicion + dissemination are both O(periods), so every
  // survivor sees g0 dead well within this deadline.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    while (!farm.Sees(hosts[i], "g0", MemberState::kDead)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << hosts[i] << " never saw g0 dead";
      std::this_thread::sleep_for(10ms);
    }
  }
}

TEST(GossipFarmTest, PerNodeProbeLoadIndependentOfFarmSize) {
  // One probe per protocol period regardless of N: the per-host ping
  // count over a fixed wall time must not scale with the farm size.
  // (PR 5's all-pairs heartbeat would make the N=7 farm ping ~3x more
  // per node than the N=3 one.)
  auto run = [&](const std::vector<std::string>& hosts) {
    GossipFarm farm(hosts, 25ms);
    std::this_thread::sleep_for(800ms);
    double total = 0;
    for (const auto& h : hosts) {
      total += static_cast<double>(
          MetricsRegistry::Global()
              .GetCounter("dmemo_gossip_pings_total", "host=\"" + h + "\"")
              ->Value());
    }
    return total / static_cast<double>(hosts.size());
  };
  const double mean3 = run({"s3a", "s3b", "s3c"});
  const double mean7 = run({"s7a", "s7b", "s7c", "s7d", "s7e", "s7f", "s7g"});
  EXPECT_GT(mean3, 0.0);
  // Generous slack for scheduler jitter; the all-pairs detector would be
  // at ratio ~3 even before jitter.
  EXPECT_LE(mean7, mean3 * 2.0 + 4.0)
      << "per-node gossip load scales with N (mean3=" << mean3
      << ", mean7=" << mean7 << ")";
}

}  // namespace
}  // namespace dmemo
