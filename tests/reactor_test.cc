// Tests for the reactor core (DESIGN.md §14): the sharded folder directory
// and its waiter continuations, FolderServer::HandleAsync parked-get
// continuations surviving epoch fencing and durability flips, and memo
// servers running the epoll event loop end-to-end over real TCP sockets —
// parked gets, deadlines, dead clients, packed batch frames, and the
// cross-host async forwarding path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "adf/adf.h"
#include "folder/directory.h"
#include "server/folder_server.h"
#include "server/memo_server.h"
#include "server/protocol.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/scalars.h"
#include "transport/socket_transport.h"
#include "util/metrics.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

Bytes Encoded(int v) { return EncodeGraphToBytes(MakeInt32(v)); }

int Decoded(const IoBuf& b) {
  auto v = DecodeGraphFromBytes(b);
  EXPECT_TRUE(v.ok());
  return std::static_pointer_cast<TInt32>(*v)->value();
}

QualifiedKey QK(const std::string& name, std::uint32_t index = 0) {
  return QualifiedKey{"t", Key::Named(name, {index})};
}

// Spin until `pred` holds or ~2s pass; returns whether it held.
bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds budget = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

// ---- sharded directory ---------------------------------------------------

TEST(ShardedDirectoryTest, ShardCountIsConfigurable) {
  FolderDirectory<Bytes> d(/*seed=*/1, /*shard_count=*/4);
  EXPECT_EQ(d.shard_count(), 4u);
  FolderDirectory<Bytes> one(/*seed=*/1, /*shard_count=*/1);
  EXPECT_EQ(one.shard_count(), 1u);
}

TEST(ShardedDirectoryTest, KeysLandInOneShardRegardlessOfCount) {
  // The same multiset of memos must be observable whether the directory
  // has one shard or many: sharding is an internal layout, not semantics.
  FolderDirectory<Bytes> wide(/*seed=*/7, /*shard_count=*/8);
  FolderDirectory<Bytes> narrow(/*seed=*/7, /*shard_count=*/1);
  for (int i = 0; i < 64; ++i) {
    const auto key = QK("spread", static_cast<std::uint32_t>(i));
    ASSERT_TRUE(wide.Put(key, Encoded(i)).ok());
    ASSERT_TRUE(narrow.Put(key, Encoded(i)).ok());
  }
  for (int i = 0; i < 64; ++i) {
    const auto key = QK("spread", static_cast<std::uint32_t>(i));
    EXPECT_EQ(wide.Count(key), 1u);
    auto a = wide.Get(key);
    auto b = narrow.Get(key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(ShardedDirectoryTest, ConcurrentPutGetAcrossShards) {
  FolderDirectory<Bytes> d(/*seed=*/3, /*shard_count=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  std::vector<std::thread> consumers;
  std::atomic<int> got{0};
  producers.reserve(kThreads);
  consumers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&d, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto key =
            QK("c", static_cast<std::uint32_t>(t * kPerThread + i));
        ASSERT_TRUE(d.Put(key, Encoded(i)).ok());
      }
    });
    consumers.emplace_back([&d, &got, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto key =
            QK("c", static_cast<std::uint32_t>(t * kPerThread + i));
        auto v = d.Get(key);  // blocks until the producer deposits
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, Encoded(i));
        got.fetch_add(1);
      }
    });
  }
  for (auto& th : producers) th.join();
  for (auto& th : consumers) th.join();
  EXPECT_EQ(got.load(), kThreads * kPerThread);
  EXPECT_EQ(d.FolderCount(), 0u);
  EXPECT_EQ(d.PendingWaiters(), 0u);
}

TEST(ShardedDirectoryTest, GetAsyncDeliversInlineWhenPresent) {
  FolderDirectory<Bytes> d(/*seed=*/5, /*shard_count=*/4);
  ASSERT_TRUE(d.Put(QK("here"), Encoded(42)).ok());
  std::optional<Bytes> seen;
  std::vector<QualifiedKey> keys{QK("here")};
  const std::uint64_t id = d.GetAsync(
      keys, /*copy=*/false,
      [&seen](Status st, std::optional<std::pair<QualifiedKey, Bytes>> kv) {
        ASSERT_TRUE(st.ok());
        ASSERT_TRUE(kv.has_value());
        seen = kv->second;
      });
  EXPECT_EQ(id, 0u);  // ran inline
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, Encoded(42));
  EXPECT_EQ(d.Count(QK("here")), 0u);  // take consumed the memo
}

TEST(ShardedDirectoryTest, GetAsyncParksAndALaterPutDelivers) {
  FolderDirectory<Bytes> d(/*seed=*/5, /*shard_count=*/4);
  std::optional<std::pair<QualifiedKey, Bytes>> seen;
  std::vector<QualifiedKey> keys{QK("later")};
  const std::uint64_t id = d.GetAsync(
      keys, /*copy=*/false,
      [&seen](Status st, std::optional<std::pair<QualifiedKey, Bytes>> kv) {
        ASSERT_TRUE(st.ok());
        seen = std::move(kv);
      });
  ASSERT_NE(id, 0u);
  EXPECT_EQ(d.PendingWaiters(), 1u);
  EXPECT_FALSE(seen.has_value());

  ASSERT_TRUE(d.Put(QK("later"), Encoded(7)).ok());
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->first, QK("later"));
  EXPECT_EQ(seen->second, Encoded(7));
  // A take-waiter consumes before the memo lands in the folder.
  EXPECT_EQ(d.Count(QK("later")), 0u);
  EXPECT_EQ(d.PendingWaiters(), 0u);
}

TEST(ShardedDirectoryTest, CopyWaiterObservesWithoutConsuming) {
  FolderDirectory<Bytes> d(/*seed=*/5, /*shard_count=*/4);
  std::optional<Bytes> seen;
  std::vector<QualifiedKey> keys{QK("peek")};
  const std::uint64_t id = d.GetAsync(
      keys, /*copy=*/true,
      [&seen](Status st, std::optional<std::pair<QualifiedKey, Bytes>> kv) {
        ASSERT_TRUE(st.ok());
        seen = kv->second;
      });
  ASSERT_NE(id, 0u);
  ASSERT_TRUE(d.Put(QK("peek"), Encoded(9)).ok());
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, Encoded(9));
  EXPECT_EQ(d.Count(QK("peek")), 1u);  // copy left the memo in place
}

TEST(ShardedDirectoryTest, CancelWaiterWinsAndTheMemoStays) {
  FolderDirectory<Bytes> d(/*seed=*/5, /*shard_count=*/4);
  std::atomic<int> fired{0};
  std::vector<QualifiedKey> keys{QK("revoked")};
  const std::uint64_t id = d.GetAsync(
      keys, /*copy=*/false,
      [&fired](Status, std::optional<std::pair<QualifiedKey, Bytes>>) {
        fired.fetch_add(1);
      });
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(d.CancelWaiter(id));
  EXPECT_FALSE(d.CancelWaiter(id));  // second revoke loses
  EXPECT_EQ(d.PendingWaiters(), 0u);

  ASSERT_TRUE(d.Put(QK("revoked"), Encoded(1)).ok());
  EXPECT_EQ(fired.load(), 0);             // the continuation never ran
  EXPECT_EQ(d.Count(QK("revoked")), 1u);  // nobody consumed the memo
}

TEST(ShardedDirectoryTest, CloseCancelsParkedWaiters) {
  FolderDirectory<Bytes> d(/*seed=*/5, /*shard_count=*/4);
  std::optional<Status> status;
  std::vector<QualifiedKey> keys{QK("doomed")};
  const std::uint64_t id = d.GetAsync(
      keys, /*copy=*/false,
      [&status](Status st, std::optional<std::pair<QualifiedKey, Bytes>>) {
        status = st;
      });
  ASSERT_NE(id, 0u);
  d.Close();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->code(), StatusCode::kCancelled);
  EXPECT_FALSE(d.CancelWaiter(id));  // close already claimed it
}

TEST(ShardedDirectoryTest, ConcurrentWaiterWakeupAcrossShards) {
  // Park one waiter per key across every shard, then deposit from many
  // threads at once: each continuation must fire exactly once with its own
  // value and no memo may leak or duplicate. Run under tsan this also
  // exercises the per-shard locking of the waiter registry.
  FolderDirectory<Bytes> d(/*seed=*/11, /*shard_count=*/8);
  constexpr int kWaiters = 256;
  std::vector<std::atomic<int>> fired(kWaiters);
  for (auto& f : fired) f.store(0);
  for (int i = 0; i < kWaiters; ++i) {
    std::vector<QualifiedKey> keys{QK("w", static_cast<std::uint32_t>(i))};
    const std::uint64_t id = d.GetAsync(
        keys, /*copy=*/false,
        [&fired, i](Status st,
                    std::optional<std::pair<QualifiedKey, Bytes>> kv) {
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(Decoded(IoBuf::FromBytes(std::move(kv->second))), i);
          fired[i].fetch_add(1);
        });
    ASSERT_NE(id, 0u);
  }
  EXPECT_EQ(d.PendingWaiters(), static_cast<std::size_t>(kWaiters));

  constexpr int kThreads = 8;
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&d, t] {
      for (int i = t; i < kWaiters; i += kThreads) {
        ASSERT_TRUE(
            d.Put(QK("w", static_cast<std::uint32_t>(i)), Encoded(i)).ok());
      }
    });
  }
  for (auto& th : producers) th.join();
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(fired[i].load(), 1);
  EXPECT_EQ(d.PendingWaiters(), 0u);
  EXPECT_EQ(d.FolderCount(), 0u);
}

// ---- folder-server continuations ----------------------------------------

Request PutReq(const std::string& name, int v) {
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named(name);
  put.value = IoBuf::FromBytes(Encoded(v));
  return put;
}

Request GetReq(const std::string& name, Op op = Op::kGet) {
  Request get;
  get.op = op;
  get.app = "t";
  get.key = Key::Named(name);
  return get;
}

TEST(FolderServerAsyncTest, ParkedGetIsWokenByAPut) {
  FolderServer fs(0, "h1");
  std::optional<Response> resp;
  std::function<bool()> cancel;
  fs.HandleAsync(GetReq("rdv"), [&resp](Response r) { resp = std::move(r); },
                 &cancel);
  ASSERT_FALSE(resp.has_value());
  ASSERT_TRUE(cancel != nullptr);

  EXPECT_EQ(fs.Handle(PutReq("rdv", 13)).code, StatusCode::kOk);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->code, StatusCode::kOk);
  ASSERT_TRUE(resp->has_value);
  EXPECT_EQ(Decoded(resp->value), 13);
  EXPECT_FALSE(cancel());  // delivery won; the revoke must lose
  fs.Shutdown();
}

TEST(FolderServerAsyncTest, CancelHookRevokesWithoutConsuming) {
  FolderServer fs(0, "h1");
  std::atomic<int> fired{0};
  std::function<bool()> cancel;
  fs.HandleAsync(GetReq("gone"), [&fired](Response) { fired.fetch_add(1); },
                 &cancel);
  ASSERT_TRUE(cancel != nullptr);
  EXPECT_TRUE(cancel());

  EXPECT_EQ(fs.Handle(PutReq("gone", 1)).code, StatusCode::kOk);
  EXPECT_EQ(fired.load(), 0);
  // The memo is still extractable by the next caller.
  auto skip = fs.Handle(GetReq("gone", Op::kGetSkip));
  EXPECT_EQ(skip.code, StatusCode::kOk);
  ASSERT_TRUE(skip.has_value);
  EXPECT_EQ(Decoded(skip.value), 1);
  fs.Shutdown();
}

TEST(FolderServerAsyncTest, EpochFenceAppliesAtDeliveryTime) {
  // A get parked before a failover must not be served by the new
  // incarnation: the waiter carries the requester's epoch and the
  // delivery-time re-check fences it, re-depositing the memo.
  FolderServer fs(0, "h1");
  Request get = GetReq("fence");
  get.epoch = 5;  // passes the head check while the server is unfenced
  std::optional<Response> resp;
  std::function<bool()> cancel;
  fs.HandleAsync(get, [&resp](Response r) { resp = std::move(r); }, &cancel);
  ASSERT_FALSE(resp.has_value());

  const std::string dir = ::testing::TempDir() + "/reactor_fence";
  FolderServerDurability opts;
  opts.snapshot_path = dir + ".snap";
  opts.wal_path = dir + ".wal";
  // TempDir() persists across runs: drop any previous run's state so the
  // replay does not resurrect it.
  std::remove(opts.snapshot_path.c_str());
  std::remove(opts.wal_path.c_str());
  ASSERT_TRUE(fs.EnableDurability(opts).ok());
  ASSERT_NE(fs.epoch(), 5u);

  EXPECT_EQ(fs.Handle(PutReq("fence", 21)).code, StatusCode::kOk);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->code, StatusCode::kFailedPrecondition);
  // The fenced waiter must not have consumed the memo.
  auto skip = fs.Handle(GetReq("fence", Op::kGetSkip));
  EXPECT_EQ(skip.code, StatusCode::kOk);
  ASSERT_TRUE(skip.has_value);
  EXPECT_EQ(Decoded(skip.value), 21);
  fs.Shutdown();
}

TEST(FolderServerAsyncTest, DurabilityFlipRedepositsAndAsksForRetry) {
  // Same shape without a stale epoch: the continuation cannot serialize
  // with the WAL, so a waiter that parked non-durable is answered
  // UNAVAILABLE ("retry") and the memo goes back for the durable sync
  // path to serve.
  FolderServer fs(0, "h1");
  std::optional<Response> resp;
  fs.HandleAsync(GetReq("flip"), [&resp](Response r) { resp = std::move(r); });
  ASSERT_FALSE(resp.has_value());

  const std::string dir = ::testing::TempDir() + "/reactor_flip";
  FolderServerDurability opts;
  opts.snapshot_path = dir + ".snap";
  opts.wal_path = dir + ".wal";
  std::remove(opts.snapshot_path.c_str());
  std::remove(opts.wal_path.c_str());
  ASSERT_TRUE(fs.EnableDurability(opts).ok());

  EXPECT_EQ(fs.Handle(PutReq("flip", 3)).code, StatusCode::kOk);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->code, StatusCode::kUnavailable);
  auto skip = fs.Handle(GetReq("flip", Op::kGetSkip));
  EXPECT_EQ(skip.code, StatusCode::kOk);
  ASSERT_TRUE(skip.has_value);
  EXPECT_EQ(Decoded(skip.value), 3);
  fs.Shutdown();
}

// ---- reactor end-to-end over TCP -----------------------------------------

constexpr const char* kOneHostAdf =
    "APP t\nHOSTS\nh1 1 t 1\nFOLDERS\n0 h1\n";

constexpr const char* kTwoHostAdf =
    "APP t\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
    "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n";

// Memo servers on the reactor core over loopback TCP. Ports are probed by
// binding :0 first (the Cluster::StartLoopbackTcp idiom) so every server
// knows its peers' concrete addresses up front.
class ReactorFarm {
 public:
  explicit ReactorFarm(const std::string& adf_text,
                       ServerCore core = ServerCore::kReactor) {
    transport_ = MakeTcpTransport();
    auto parsed = ParseAdf(adf_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    adf_ = parsed->description;

    std::unordered_map<std::string, std::string> peers;
    for (const auto& host : adf_.hosts) {
      auto probe = transport_->Listen("tcp://127.0.0.1:0");
      EXPECT_TRUE(probe.ok()) << probe.status();
      peers[host.name] = (*probe)->address();
      (*probe)->Close();
    }
    for (const auto& host : adf_.hosts) {
      MemoServerOptions opts;
      opts.host = host.name;
      opts.listen_url = peers[host.name];
      opts.peers = peers;
      opts.core = core;
      opts.heartbeat_interval = 0ms;  // keep the detector out of the way
      auto server = MemoServer::Start(transport_, opts);
      EXPECT_TRUE(server.ok()) << server.status();
      servers_[host.name] = std::move(*server);
    }
    for (auto& [name, server] : servers_) {
      EXPECT_TRUE(server->RegisterApp(adf_).ok());
    }
  }

  ~ReactorFarm() {
    for (auto& [name, server] : servers_) server->Shutdown();
  }

  MemoServer& at(const std::string& host) { return *servers_.at(host); }
  TransportPtr transport() { return transport_; }

  ConnectionPtr DialRaw(const std::string& host) {
    auto conn = transport_->Dial(servers_.at(host)->address());
    EXPECT_TRUE(conn.ok()) << conn.status();
    return std::move(*conn);
  }

  RpcChannelPtr Connect(const std::string& host) {
    return RpcChannel::Create(DialRaw(host), nullptr, nullptr);
  }

 private:
  TransportPtr transport_;
  AppDescription adf_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
};

TEST(ReactorCoreTest, ServerCoreFromEnvParses) {
  ::setenv("DMEMO_SERVER_CORE", "reactor", 1);
  EXPECT_EQ(ServerCoreFromEnv(), ServerCore::kReactor);
  ::setenv("DMEMO_SERVER_CORE", "threads", 1);
  EXPECT_EQ(ServerCoreFromEnv(), ServerCore::kThreads);
  ::setenv("DMEMO_SERVER_CORE", "bogus", 1);
  EXPECT_EQ(ServerCoreFromEnv(), ServerCore::kThreads);
  ::unsetenv("DMEMO_SERVER_CORE");
  EXPECT_EQ(ServerCoreFromEnv(), ServerCore::kThreads);
}

TEST(ReactorCoreTest, PutGetRoundTrip) {
  ReactorFarm farm(kOneHostAdf);
  auto chan = farm.Connect("h1");
  for (int i = 0; i < 32; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    put.value = IoBuf::FromBytes(Encoded(i));
    auto resp = chan->Call(put);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  }
  for (int i = 0; i < 32; ++i) {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    auto resp = chan->Call(get);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    ASSERT_TRUE(resp->has_value);
    EXPECT_EQ(Decoded(resp->value), i);
  }
  chan->Close();
}

TEST(ReactorCoreTest, ParkedGetIsWokenByALaterPut) {
  ReactorFarm farm(kOneHostAdf);
  auto getter = farm.Connect("h1");
  auto putter = farm.Connect("h1");

  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto resp = getter->Call(GetReq("rendezvous"));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk);
    EXPECT_EQ(Decoded(resp->value), 77);
    got = true;
  });
  // The get parks as a reactor waiter, not a blocked thread.
  Gauge* parked =
      MetricsRegistry::Global().GetGauge("dmemo_reactor_parked_waiters");
  EXPECT_TRUE(WaitFor([&] { return parked->Value() > 0; }));
  EXPECT_FALSE(got.load());

  auto resp = putter->Call(PutReq("rendezvous", 77));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk);
  consumer.join();
  EXPECT_TRUE(got.load());
  getter->Close();
  putter->Close();
}

TEST(ReactorCoreTest, DeadlineExpiresAParkedGet) {
  ReactorFarm farm(kOneHostAdf);
  auto chan = farm.Connect("h1");
  Request get = GetReq("never");
  get.deadline_ms = 60;
  const auto start = std::chrono::steady_clock::now();
  auto resp = chan->Call(get);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->code, StatusCode::kTimedOut) << resp->message;
  EXPECT_GE(elapsed, 50ms);
  // The folder must not retain a dead waiter: a put afterwards parks the
  // memo for the next caller rather than feeding the expired request.
  ASSERT_EQ(chan->Call(PutReq("never", 5))->code, StatusCode::kOk);
  auto skip = chan->Call(GetReq("never", Op::kGetSkip));
  ASSERT_TRUE(skip.ok());
  ASSERT_EQ(skip->code, StatusCode::kOk);
  EXPECT_EQ(Decoded(skip->value), 5);
  chan->Close();
}

TEST(ReactorCoreTest, DeadClientDoesNotLoseTheMemo) {
  ReactorFarm farm(kOneHostAdf);
  Gauge* parked =
      MetricsRegistry::Global().GetGauge("dmemo_reactor_parked_waiters");
  const std::int64_t base = parked->Value();

  // A raw connection parks a get, then dies without reading the response.
  auto doomed = farm.DialRaw("h1");
  ByteWriter w;
  w.u8(kFrameKindRequest);
  w.u64(/*rpc id=*/1);
  GetReq("survivor").EncodeTo(w);
  ASSERT_TRUE(doomed->Send(w.data()).ok());
  ASSERT_TRUE(WaitFor([&] { return parked->Value() > base; }));
  doomed->Close();
  // The reactor reaps the connection and revokes its waiter.
  ASSERT_TRUE(WaitFor([&] { return parked->Value() == base; }));

  auto chan = farm.Connect("h1");
  ASSERT_EQ(chan->Call(PutReq("survivor", 99))->code, StatusCode::kOk);
  auto resp = chan->Call(GetReq("survivor"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  EXPECT_EQ(Decoded(resp->value), 99);  // not consumed by the dead client
  chan->Close();
}

TEST(ReactorCoreTest, BatchFrameInBatchFrameOut) {
  // A peer that sends a packed kind-3 frame gets its responses packed the
  // same way; the entries decode to ordinary Response bodies.
  ReactorFarm farm(kOneHostAdf);
  auto conn = farm.DialRaw("h1");

  std::vector<BatchEntry> entries;
  std::vector<IoBuf> bodies;
  for (int i = 0; i < 2; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("b", {static_cast<std::uint32_t>(i)});
    put.value = IoBuf::FromBytes(Encoded(i));
    bodies.push_back(put.EncodeToIoBuf());
    entries.push_back(BatchEntry{kFrameKindRequest,
                                 static_cast<std::uint64_t>(i + 1),
                                 bodies.back()});
  }
  ASSERT_TRUE(conn->SendBuf(EncodeBatchFrame(entries)).ok());

  auto frame = conn->Receive();
  ASSERT_TRUE(frame.ok()) << frame.status();
  IoBufReader reader(*frame);
  ByteReader& in = reader.base();
  auto kind = in.u8();
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, kFrameKindBatch);
  auto count = in.u64();
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, 2u);
  auto got = DecodeBatchEntries(reader, *count);
  ASSERT_TRUE(got.ok()) << got.status();
  std::uint64_t id_mask = 0;
  for (const BatchEntry& e : *got) {
    EXPECT_EQ(e.kind, kFrameKindResponse);
    id_mask |= 1u << e.id;
    IoBufReader er(e.body);
    auto resp = Response::DecodeFrom(er);
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
  }
  EXPECT_EQ(id_mask, (1u << 1) | (1u << 2));  // both rpc ids answered
  conn->Close();
}

TEST(ReactorCoreTest, SingleFrameInSingleFrameOut) {
  // A legacy peer that never batches must never receive a kind-3 frame.
  ReactorFarm farm(kOneHostAdf);
  auto conn = farm.DialRaw("h1");
  ByteWriter w;
  w.u8(kFrameKindRequest);
  w.u64(/*rpc id=*/9);
  PutReq("solo", 4).EncodeTo(w);
  ASSERT_TRUE(conn->Send(w.data()).ok());

  auto frame = conn->Receive();
  ASSERT_TRUE(frame.ok()) << frame.status();
  IoBufReader reader(*frame);
  ByteReader& in = reader.base();
  auto kind = in.u8();
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, kFrameKindResponse);
  auto id = in.u64();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 9u);
  auto resp = Response::DecodeFrom(reader);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk) << resp->message;
  conn->Close();
}

TEST(ReactorCoreTest, CrossHostForwardCompletesAsynchronously) {
  // Puts and gets land on the non-owning server and forward to the owner
  // through ResilientChannel::CallAsync: no reactor thread parks, and the
  // responses find their way back to the right client.
  ReactorFarm farm(kTwoHostAdf);
  auto a = farm.Connect("hostA");
  auto b = farm.Connect("hostB");
  for (int i = 0; i < 16; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("x", {static_cast<std::uint32_t>(i)});
    put.value = IoBuf::FromBytes(Encoded(i));
    auto resp = a->Call(put);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  }
  for (int i = 0; i < 16; ++i) {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = Key::Named("x", {static_cast<std::uint32_t>(i)});
    auto resp = b->Call(get);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    ASSERT_TRUE(resp->has_value);
    EXPECT_EQ(Decoded(resp->value), i);
  }
  EXPECT_GT(farm.at("hostA").stats().forwarded +
                farm.at("hostB").stats().forwarded,
            0u);
  a->Close();
  b->Close();
}

TEST(ReactorCoreTest, CrossHostParkedGetWakesAcrossMachines) {
  ReactorFarm farm(kTwoHostAdf);
  auto a = farm.Connect("hostA");
  auto b = farm.Connect("hostB");
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto resp = a->Call(GetReq("across"));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    EXPECT_EQ(Decoded(resp->value), 55);
    got = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(got.load());
  ASSERT_EQ(b->Call(PutReq("across", 55))->code, StatusCode::kOk);
  consumer.join();
  a->Close();
  b->Close();
}

TEST(ReactorCoreTest, ManyConcurrentClients) {
  ReactorFarm farm(kOneHostAdf);
  constexpr int kClients = 16;
  constexpr int kOps = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&farm, &ok, c] {
      auto chan = farm.Connect("h1");
      for (int i = 0; i < kOps; ++i) {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(c * kOps + i);
        Request put;
        put.op = Op::kPut;
        put.app = "t";
        put.key = Key::Named("m", {slot});
        put.value = IoBuf::FromBytes(Encoded(static_cast<int>(slot)));
        auto pr = chan->Call(put);
        ASSERT_TRUE(pr.ok());
        ASSERT_EQ(pr->code, StatusCode::kOk);
        Request get;
        get.op = Op::kGet;
        get.app = "t";
        get.key = Key::Named("m", {slot});
        auto gr = chan->Call(get);
        ASSERT_TRUE(gr.ok());
        ASSERT_EQ(gr->code, StatusCode::kOk);
        EXPECT_EQ(Decoded(gr->value), static_cast<int>(slot));
        ok.fetch_add(1);
      }
      chan->Close();
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(ok.load(), kClients * kOps);
}

TEST(ReactorCoreTest, ThreadedCoreStillServesTheSameTraffic) {
  // The legacy core stays selectable and wire-compatible.
  ReactorFarm farm(kOneHostAdf, ServerCore::kThreads);
  auto chan = farm.Connect("h1");
  ASSERT_EQ(chan->Call(PutReq("legacy", 8))->code, StatusCode::kOk);
  auto resp = chan->Call(GetReq("legacy"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk);
  EXPECT_EQ(Decoded(resp->value), 8);
  chan->Close();
}

}  // namespace
}  // namespace dmemo
