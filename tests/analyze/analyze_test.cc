// Golden-file self-tests for dmemo-analyze (tools/analyze). Each rule
// family gets a violation fixture, a clean fixture, and an allowlisted
// fixture; multi-file rule inputs (protocol, registry) live in sectioned
// fixtures split on "//== <path>" lines.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"

namespace dmemo::analyze {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(DMEMO_ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Splits a sectioned fixture into SourceFiles. A line "//== some/path"
// starts a new section whose path is the rest of the line.
std::vector<SourceFile> SplitSections(const std::string& content) {
  std::vector<SourceFile> files;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("//== ", 0) == 0) {
      files.push_back({line.substr(5), ""});
      continue;
    }
    if (files.empty()) {
      ADD_FAILURE() << "fixture content before first section";
      continue;
    }
    files.back().content += line;
    files.back().content += '\n';
  }
  return files;
}

RankTable FixtureRanks() {
  RankTable table;
  std::string error;
  EXPECT_TRUE(ParseRankTable(ReadFixture("ranks.def"), &table, &error))
      << error;
  return table;
}

AnalyzeInput LockInput(const std::string& fixture) {
  AnalyzeInput input;
  input.sources.push_back({"src/fixture/" + fixture, ReadFixture(fixture)});
  input.ranks = FixtureRanks();
  input.blocking = ParseWordList("Send\nReceive\nfsync\nPop\n");
  return input;
}

int CountMessage(const std::vector<Finding>& findings,
                 const std::string& substring) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.message.find(substring) != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Lexer + config parsing
// ---------------------------------------------------------------------------

TEST(Lexer, TokensCommentsAndLiterals) {
  const std::string src =
      "#include <x>\n"
      "// a comment\n"
      "int n = 0x5bf0'3635;  // trailing\n"
      "auto s = R\"x(raw \" text)x\";\n";
  Lexed lx = Lex(src);
  ASSERT_GE(lx.tokens.size(), 6u);
  EXPECT_EQ(lx.tokens[0].text, "int");  // preprocessor line skipped
  EXPECT_EQ(lx.tokens[1].text, "n");
  EXPECT_EQ(lx.tokens[3].text, "0x5bf0'3635");
  EXPECT_EQ(lx.tokens[3].kind, Token::kNumber);
  bool found_raw = false;
  for (const Token& t : lx.tokens) {
    if (t.kind == Token::kString && t.text == "raw \" text") found_raw = true;
  }
  EXPECT_TRUE(found_raw);
  EXPECT_NE(lx.comments.count(2), 0u);
  EXPECT_NE(lx.comments.count(3), 0u);
  EXPECT_EQ(lx.comments.count(4), 0u);
}

TEST(RankTable, ParsesRanksAndLeaves) {
  RankTable table = FixtureRanks();
  EXPECT_EQ(table.rank.at("Widget::mu"), 10);
  EXPECT_EQ(table.rank.at("Pool::mu"), 20);
  EXPECT_NE(table.leaf.count("Widget::stats_mu"), 0u);
  EXPECT_TRUE(table.Known("Widget::stats_mu"));
  EXPECT_FALSE(table.Known("Nope::mu"));
}

TEST(RankTable, RejectsMalformedLines) {
  RankTable table;
  std::string error;
  EXPECT_FALSE(ParseRankTable("rank x Widget::mu\n", &table, &error));
  EXPECT_FALSE(ParseRankTable("frobnicate Widget::mu\n", &table, &error));
}

TEST(MutexIndexTest, CanonicalNamesFromLiteralsAndClass) {
  std::vector<SourceFile> sources = {
      {"src/fixture/widget.h",
       "class Widget {\n"
       "  Mutex mu_{\"Widget::mu\"};\n"
       "  Mutex plain_mu_;\n"
       "};\n"}};
  MutexIndex index = BuildMutexIndex(sources);
  EXPECT_EQ(index.by_class.at({"Widget", "mu_"}), "Widget::mu");
  EXPECT_EQ(index.by_class.at({"Widget", "plain_mu_"}), "Widget::plain_mu");
}

// ---------------------------------------------------------------------------
// Rule 1: lock-rank
// ---------------------------------------------------------------------------

TEST(LockRank, DetectsReversedPair) {
  std::vector<Finding> findings =
      CheckLockRank(LockInput("lock_rank_violation.cxx"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-rank");
  EXPECT_FALSE(findings[0].allowlisted);
  EXPECT_NE(findings[0].message.find("ranks must strictly increase"),
            std::string::npos)
      << findings[0].message;
}

TEST(LockRank, CleanNestingPasses) {
  EXPECT_TRUE(CheckLockRank(LockInput("lock_rank_clean.cxx")).empty());
}

TEST(LockRank, AllowMarkerNeedsJustification) {
  std::vector<Finding> findings =
      CheckLockRank(LockInput("lock_rank_allowlisted.cxx"));
  ASSERT_EQ(findings.size(), 2u);
  int allowlisted = 0;
  int bare_marker = 0;
  for (const Finding& f : findings) {
    if (f.allowlisted) {
      ++allowlisted;
      EXPECT_NE(f.justification.find("startup path"), std::string::npos);
    } else {
      ++bare_marker;
      EXPECT_NE(f.message.find("missing justification"), std::string::npos)
          << f.message;
    }
  }
  EXPECT_EQ(allowlisted, 1);
  EXPECT_EQ(bare_marker, 1);
}

// ---------------------------------------------------------------------------
// Rule 2: blocking-under-lock
// ---------------------------------------------------------------------------

TEST(Blocking, DetectsSendUnderLock) {
  std::vector<Finding> findings =
      CheckBlockingUnderLock(LockInput("blocking_violation.cxx"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-under-lock");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("'Send'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Widget::mu"), std::string::npos);
}

TEST(Blocking, ScopeExitAndLambdasAreClean) {
  EXPECT_TRUE(
      CheckBlockingUnderLock(LockInput("blocking_clean.cxx")).empty());
}

TEST(Blocking, AllowMarkerSuppresses) {
  std::vector<Finding> findings =
      CheckBlockingUnderLock(LockInput("blocking_allowlisted.cxx"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].allowlisted);
  EXPECT_NE(findings[0].justification.find("serializing whole frames"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule 7: blocking-in-reactor
// ---------------------------------------------------------------------------

TEST(ReactorRule, FlagsDirectTransitiveAndMarkedRoots) {
  std::vector<Finding> findings =
      CheckBlockingInReactor(LockInput("reactor_violation.cxx"));
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "blocking-in-reactor");
    EXPECT_FALSE(f.allowlisted);
  }
  // Direct call on a Reactor method.
  EXPECT_EQ(CountMessage(findings, "'Pop'"), 1);
  // Transitive: Loop -> Step -> Drain -> Send.
  EXPECT_EQ(CountMessage(findings, "'Send'"), 1);
  // analyze:reactor-context marker turns a free function into a root;
  // Shutdown (lifecycle) and the unmarked Background stay exempt, so
  // exactly one Receive is flagged.
  EXPECT_EQ(CountMessage(findings, "'Receive'"), 1);
}

TEST(ReactorRule, LambdasTryVariantsAndLifecycleAreClean) {
  EXPECT_TRUE(
      CheckBlockingInReactor(LockInput("reactor_clean.cxx")).empty());
}

TEST(ReactorRule, AllowMarkerSuppresses) {
  std::vector<Finding> findings =
      CheckBlockingInReactor(LockInput("reactor_allowlisted.cxx"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].allowlisted);
  EXPECT_NE(findings[0].justification.find("bounded one-shot drain"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule 3: protocol drift
// ---------------------------------------------------------------------------

AnalyzeInput ProtocolInput(const std::string& fixture) {
  AnalyzeInput input;
  std::vector<SourceFile> sections = SplitSections(ReadFixture(fixture));
  for (SourceFile& s : sections) {
    if (s.path.find(".md") != std::string::npos) {
      input.docs.push_back(std::move(s));
    } else {
      input.sources.push_back(std::move(s));
    }
  }
  return input;
}

TEST(Protocol, CleanSetPasses) {
  std::vector<Finding> findings =
      CheckProtocolDrift(ProtocolInput("protocol_clean.txt"));
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings[0].message);
}

TEST(Protocol, DetectsEveryDriftKind) {
  std::vector<Finding> findings =
      CheckProtocolDrift(ProtocolInput("protocol_drift.txt"));
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "protocol-drift");
  // Undocumented op (the seeded acceptance case).
  EXPECT_EQ(CountMessage(findings,
                         "op 'ping' (kPing) is missing from the PROTOCOL.md"),
            1);
  // Doc row with the wrong code.
  EXPECT_EQ(CountMessage(findings, "documented as code 5 but the enum says 2"),
            1);
  // Doc row for an op that does not exist.
  EXPECT_EQ(
      CountMessage(findings, "documents op 'stat' which does not exist"), 1);
  // Op never dispatched.
  EXPECT_EQ(CountMessage(findings, "'kPing' is never dispatched"), 1);
  // Decode field-order drift.
  EXPECT_EQ(CountMessage(findings, "wire field order drift"), 1);
  // Encoder that misses a field.
  EXPECT_EQ(CountMessage(findings, "never encodes field 'value'"), 1);
  // The replication/membership ops drift too: an undocumented op...
  EXPECT_EQ(CountMessage(findings,
                         "op 'repl_snapshot' (kReplSnapshot) is missing from "
                         "the PROTOCOL.md"),
            1);
  // ...a doc row whose code disagrees with the enum...
  EXPECT_EQ(CountMessage(findings, "documented as code 16 but the enum says 6"),
            1);
  // ...and an op the server never dispatches.
  EXPECT_EQ(CountMessage(findings, "'kReplAppend' is never dispatched"), 1);
  EXPECT_EQ(findings.size(), 9u);
}

// ---------------------------------------------------------------------------
// Rule 4: registry drift
// ---------------------------------------------------------------------------

TEST(Registry, DetectsEveryDriftKind) {
  AnalyzeInput input = ProtocolInput("registry_drift.txt");
  std::vector<Finding> findings = CheckRegistryDrift(input);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "registry-drift");
  EXPECT_EQ(CountMessage(findings,
                         "env var 'DMEMO_FIXTURE_MODE' is read here but not "
                         "documented — did you mean 'DMEMO_FIXTURE_MODES'?"),
            1);
  EXPECT_EQ(CountMessage(findings,
                         "docs mention env var 'DMEMO_FIXTURE_MODES'"),
            1);
  EXPECT_EQ(CountMessage(findings,
                         "metric 'dmemo_fix_ops_total' is registered here"),
            1);
  EXPECT_EQ(CountMessage(findings,
                         "docs mention metric 'dmemo_fix_gone_total' but no "
                         "code registers it — did you mean "
                         "'dmemo_fix_good_total'?"),
            1);
  EXPECT_EQ(CountMessage(findings,
                         "metric 'dmemo_fix_dup_total' is registered as "
                         "multiple types (GetCounter, GetGauge)"),
            1);
  EXPECT_EQ(findings.size(), 5u);
}

// ---------------------------------------------------------------------------
// Rules 5+6: the absorbed lint greps
// ---------------------------------------------------------------------------

TEST(ZeroCopy, FlagsFlattenOnMessagePathOnly) {
  const std::string content = ReadFixture("zero_copy_violation.cxx");
  AnalyzeInput on_path;
  on_path.sources.push_back({"src/server/zc_fixture.cc", content});
  std::vector<Finding> findings = CheckZeroCopy(on_path);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "zero-copy");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].line, 4);

  AnalyzeInput off_path;
  off_path.sources.push_back({"src/folder/zc_fixture.cc", content});
  EXPECT_TRUE(CheckZeroCopy(off_path).empty());
}

TEST(WalMutation, FlagsUnmarkedMutationsInFolderServerOnly) {
  const std::string content = ReadFixture("wal_mutation.cxx");
  AnalyzeInput in_server;
  in_server.sources.push_back({"src/server/folder_server.cc", content});
  std::vector<Finding> findings = CheckWalMutation(in_server);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "wal-mutation");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].line, 7);

  AnalyzeInput elsewhere;
  elsewhere.sources.push_back({"src/server/other_server.cc", content});
  EXPECT_TRUE(CheckWalMutation(elsewhere).empty());
}

}  // namespace
}  // namespace dmemo::analyze
