// Fixture: payload flattening on the message path.
void Handle(const Response& resp, IoBuf& out) {
  Bytes copy = resp.value;
  auto flat = resp.value.Flatten();
  out.Append(resp.value_buf);
}
