// Fixture: reversed lock pair. Pool::mu (rank 20) is held when
// Widget::mu (rank 10) is acquired — ranks must strictly increase inward.
class Widget {
 public:
  Mutex mu_{"Widget::mu"};
};

class Pool {
 public:
  void Drain();
  Widget* widget_ = nullptr;
  Mutex mu_{"Pool::mu"};
};

void Pool::Drain() {
  MutexLock lock(mu_);
  MutexLock inner(widget_->mu_);  // analyze:lock(Widget::mu)
}
