// Fixture: the reactor path stays clean when blocking work rides lambdas
// (pool tasks / completion callbacks) or non-blocking Try* variants.
void Reactor::Loop() {
  for (;;) {
    auto frame = conn_->TryReceive();  // Try* names don't match the list
    Dispatch();
  }
}

void Reactor::Dispatch() {
  // The lambda body runs on a pool thread, not the loop.
  pool_->Submit([this] { conn_->Send(buf_); });
}

// Lifecycle methods may block on the owner thread.
void Reactor::Shutdown() {
  queue_->Pop();
  thread_.join();
}
