// Fixture: a justified blocking call on the reactor path.
void Reactor::Loop() {
  // analyze:allow(blocking-in-reactor) fixture: bounded one-shot drain
  queue_->Pop();
}
