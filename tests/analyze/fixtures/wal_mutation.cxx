// Fixture: directory mutations in a folder server; two lack the
// wal:applied marker.
void FolderServer::Apply(const Request& r) {
  directory_.Put(r.key, r.value);
  directory_.PutDelayed(r.key, r.key2, r.value);  // wal:applied
  directory_.TakeEqual(r.key, r.value);  // wal:applied
  auto got = directory_.GetFor(r.key, deadline_);
}
