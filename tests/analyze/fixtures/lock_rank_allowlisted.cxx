// Fixture: the same reversed pair as lock_rank_violation.cxx, with an
// allow marker carrying a justification — and a second violation whose
// marker has no justification (must stay a finding).
class Widget {
 public:
  Mutex mu_{"Widget::mu"};
};

class Pool {
 public:
  void Drain();
  void Flush();
  Widget* widget_ = nullptr;
  Mutex mu_{"Pool::mu"};
};

void Pool::Drain() {
  MutexLock lock(mu_);
  // analyze:allow(lock-rank) fixture: startup path, widget not yet shared
  MutexLock inner(widget_->mu_);  // analyze:lock(Widget::mu)
}

void Pool::Flush() {
  MutexLock lock(mu_);
  // analyze:allow(lock-rank)
  MutexLock inner(widget_->mu_);  // analyze:lock(Widget::mu)
}
