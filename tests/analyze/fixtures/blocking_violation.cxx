// Fixture: a network send while holding a lock.
class Widget {
 public:
  void Flush() {
    MutexLock lock(mu_);
    conn_->Send(buf_);
  }

  Connection* conn_ = nullptr;
  Bytes buf_;
  Mutex mu_{"Widget::mu"};
};
