// Fixture: no blocking call ever happens under the lock. The send after
// the scope closes is fine, and the send captured in a lambda runs later,
// not under the guard that was live at capture time.
class Widget {
 public:
  void Flush() {
    {
      MutexLock lock(mu_);
      staged_ = buf_;
    }
    conn_->Send(staged_);
  }

  void Defer() {
    MutexLock lock(mu_);
    cb_ = [this] { conn_->Send(staged_); };
  }

  Connection* conn_ = nullptr;
  Bytes buf_;
  Bytes staged_;
  std::function<void()> cb_;
  Mutex mu_{"Widget::mu"};
};
