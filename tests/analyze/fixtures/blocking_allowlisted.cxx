// Fixture: a deliberate send-under-lock with a justified allow marker.
class Widget {
 public:
  void Flush() {
    MutexLock lock(mu_);
    // analyze:allow(blocking-under-lock) fixture: serializing whole frames
    conn_->Send(buf_);
  }

  Connection* conn_ = nullptr;
  Bytes buf_;
  Mutex mu_{"Widget::mu"};
};
