// Fixture: correct nesting. Widget::mu (10) -> Pool::mu (20) increases
// inward, and the leaf Widget::stats_mu is innermost.
class Pool {
 public:
  Mutex mu_{"Pool::mu"};
};

class Widget {
 public:
  void Refresh();
  Pool* pool_ = nullptr;
  Mutex mu_{"Widget::mu"};
  Mutex stats_mu_{"Widget::stats_mu"};
};

void Widget::Refresh() {
  MutexLock lock(mu_);
  {
    MutexLock plock(pool_->mu_);  // analyze:lock(Pool::mu)
    MutexLock slock(stats_mu_);
  }
}
