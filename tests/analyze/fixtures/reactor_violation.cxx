// Fixture: blocking calls reachable from reactor-context roots. Roots are
// out-of-line Reactor:: definitions plus analyze:reactor-context markers.
void Reactor::Loop() {
  for (;;) {
    Step();
    queue_->Pop();  // direct violation on a Reactor method
  }
}

void Reactor::Step() { Drain(); }

// Transitive: Loop -> Step -> Drain -> Send.
void Reactor::Drain() { conn_->Send(buf_); }

// Owner-thread lifecycle is exempt even when it blocks.
void Reactor::Shutdown() { conn_->Receive(); }

// analyze:reactor-context
void PumpOnce(Connection* conn) { conn->Receive(); }

// Unmarked free function: not a root, not reachable - clean.
void Background(Connection* conn) { conn->Receive(); }
