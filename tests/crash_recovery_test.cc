// Crash durability and failover (DESIGN.md "Durability & liveness"):
// WAL replay rebuilds a folder server byte-identically, stale-epoch
// requests are fenced, replay re-seeds the at-most-once window, the
// heartbeat detector notices a dead peer, and — the headline — a
// SIGKILLed server loses zero acknowledged memos and re-delivers none
// twice (the kill -9 chaos harness over real processes).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <initializer_list>
#include <map>
#include <thread>
#include <vector>

#include "core/memo.h"
#include "runtime/cluster.h"
#include "server/folder_server.h"
#include "server/memo_server.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"
#include "transport/transport.h"

#ifndef DMEMO_SERVER_BINARY
#define DMEMO_SERVER_BINARY ""
#endif

namespace dmemo {
namespace {

using namespace std::chrono_literals;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dmemo_crash_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    (void)std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  FolderServerDurability Durability() {
    FolderServerDurability d;
    d.snapshot_path = dir_ + "/fs.dmemo";
    d.wal_path = dir_ + "/fs.wal";
    return d;
  }

  std::string dir_;
};

IoBuf Encoded(int v) { return EncodeGraphToIoBuf(MakeInt32(v)); }

Request Put(const std::string& name, int v, std::uint64_t rid) {
  Request r;
  r.op = Op::kPut;
  r.app = "cr";
  r.key = Key::Named(name);
  r.value = Encoded(v);
  r.request_id = rid;
  return r;
}

Bytes CanonicalSnapshot(FolderServer& fs) {
  ByteWriter out;
  fs.directory().SnapshotTo(out);
  return out.take();
}

TEST_F(CrashRecoveryTest, ReplayRebuildsDirectoryByteIdentical) {
  std::map<std::uint64_t, Response> seeds;
  auto seed = [&seeds](std::uint64_t rid, const Response& resp) {
    seeds.emplace(rid, resp);
  };

  Bytes pre_crash;
  {
    // First incarnation: durable workload, then "crash" — the instance is
    // destroyed without Shutdown or Checkpoint, so only the snapshot taken
    // at EnableDurability (empty) plus the WAL survive.
    auto fs = std::make_unique<FolderServer>(0, "hostA");
    ASSERT_TRUE(fs->EnableDurability(Durability()).ok());
    EXPECT_EQ(fs->epoch(), 1u);
    std::uint64_t rid = 100;
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(fs->Handle(Put("pile", i, ++rid)).code, StatusCode::kOk);
    }
    // Extractions must replay too: a get whose ack was durable may not be
    // re-delivered after recovery.
    for (int i = 0; i < 5; ++i) {
      Request get;
      get.op = Op::kGet;
      get.app = "cr";
      get.key = Key::Named("pile");
      get.request_id = ++rid;
      Response resp = fs->Handle(get);
      EXPECT_EQ(resp.code, StatusCode::kOk);
      EXPECT_TRUE(resp.has_value);
    }
    // A parked delayed put is state as well.
    Request delayed;
    delayed.op = Op::kPutDelayed;
    delayed.app = "cr";
    delayed.key = Key::Named("trigger");
    delayed.key2 = Key::Named("dest");
    delayed.value = Encoded(77);
    delayed.request_id = ++rid;
    EXPECT_EQ(fs->Handle(delayed).code, StatusCode::kOk);
    pre_crash = CanonicalSnapshot(*fs);
    fs.reset();  // kill -9 analogue for the in-process variant
  }

  // Recovery: snapshot + WAL replay under a bumped epoch must reproduce
  // the pre-crash directory byte for byte (snapshots are canonical).
  FolderServer recovered(0, "hostA");
  ASSERT_TRUE(recovered.EnableDurability(Durability(), seed).ok());
  EXPECT_EQ(recovered.epoch(), 2u);
  EXPECT_EQ(CanonicalSnapshot(recovered), pre_crash);
  // Every replayed mutation re-seeded the at-most-once window.
  EXPECT_EQ(seeds.size(), 26u);
  EXPECT_TRUE(seeds.count(101));
  // 15 memos remain (20 put - 5 got); the delayed one is parked, not
  // visible.
  EXPECT_EQ(recovered.directory().Count(QualifiedKey{"cr", Key::Named("pile")}),
            15u);

  // The recovered WAL is fresh: replaying the recovered state again (a
  // second crash right now) must also converge.
  EXPECT_EQ(recovered.wal_lag_bytes(), 0u);
}

TEST_F(CrashRecoveryTest, StaleEpochRequestFenced) {
  FolderServer fs(0, "hostA");
  ASSERT_TRUE(fs.EnableDurability(Durability()).ok());
  ASSERT_EQ(fs.epoch(), 1u);

  Request stale = Put("fenced", 1, 1);
  stale.epoch = 99;  // a zombie from a long-dead incarnation
  Response resp = fs.Handle(stale);
  EXPECT_EQ(resp.code, StatusCode::kFailedPrecondition) << resp.message;

  Request current = Put("fenced", 1, 2);
  current.epoch = fs.epoch();
  EXPECT_EQ(fs.Handle(current).code, StatusCode::kOk);

  Request unfenced = Put("fenced", 2, 3);  // epoch 0: normal client traffic
  EXPECT_EQ(fs.Handle(unfenced).code, StatusCode::kOk);
  EXPECT_EQ(fs.directory().Count(QualifiedKey{"cr", Key::Named("fenced")}),
            2u);
}

TEST_F(CrashRecoveryTest, CompactionFoldsWalIntoSnapshot) {
  FolderServerDurability d = Durability();
  d.compact_bytes = 1;  // every commit crosses the threshold
  FolderServer fs(0, "hostA");
  ASSERT_TRUE(fs.EnableDurability(d).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(fs.Handle(Put("c", i, 10 + i)).code, StatusCode::kOk);
  }
  // The last put compacted (snapshot + truncate); at most the final
  // record could remain un-folded, and with threshold 1 not even that.
  EXPECT_EQ(fs.wal_lag_bytes(), 0u);
  // Compaction keeps the epoch: no failover happened.
  EXPECT_EQ(fs.epoch(), 1u);

  // The folded snapshot alone (WAL now empty) must carry the state.
  FolderServer again(0, "hostA");
  ASSERT_TRUE(again.EnableDurability(Durability()).ok());
  EXPECT_EQ(again.directory().Count(QualifiedKey{"cr", Key::Named("c")}), 4u);
}

TEST_F(CrashRecoveryTest, HeartbeatDetectsDeadPeer) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  std::unordered_map<std::string, std::string> peers{
      {"hostA", "sim://hostA"}, {"hostB", "sim://hostB"}};
  auto start = [&](const std::string& host) {
    MemoServerOptions opts;
    opts.host = host;
    opts.listen_url = peers[host];
    opts.peers = peers;
    opts.heartbeat_interval = 25ms;
    opts.heartbeat_misses = 2;
    auto server = MemoServer::Start(transport, opts);
    EXPECT_TRUE(server.ok()) << server.status();
    return std::move(*server);
  };
  auto server_a = start("hostA");
  auto server_b = start("hostB");

  // Let a few beats land: A must see B alive.
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  bool saw_alive = false;
  while (std::chrono::steady_clock::now() < deadline && !saw_alive) {
    for (const PeerHealthView& v : server_a->peer_health()) {
      if (v.host == "hostB" && v.alive && v.last_seen_micros > 0) {
        saw_alive = true;
      }
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(saw_alive) << "hostA never saw a good beat from hostB";

  // Kill B; after >= 2 missed beats A must presume it dead.
  server_b->Shutdown();
  const auto dead_deadline = std::chrono::steady_clock::now() + 5s;
  bool saw_dead = false;
  while (std::chrono::steady_clock::now() < dead_deadline && !saw_dead) {
    for (const PeerHealthView& v : server_a->peer_health()) {
      if (v.host == "hostB" && !v.alive && v.misses >= 2) saw_dead = true;
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(saw_dead) << "failure detector never declared hostB dead";
  server_a->Shutdown();
}

// ---- multi-process chaos harness ----------------------------------------

// Epoch a host's folder server reports over the wire (kStats), or 0.
std::uint64_t FetchedEpoch(const TransportPtr& transport,
                           const std::string& url) {
  auto conn = transport->Dial(url);
  if (!conn.ok()) return 0;
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request req;
  req.op = Op::kStats;
  auto resp = channel->Call(req);
  channel->Close();
  if (!resp.ok() || !resp->has_value) return 0;
  auto decoded = DecodeGraphFromBytes(resp->value);
  if (!decoded.ok()) return 0;
  auto root = std::dynamic_pointer_cast<TRecord>(*decoded);
  if (root == nullptr) return 0;
  auto folders = std::dynamic_pointer_cast<TList>(root->Get("folder_servers"));
  if (folders == nullptr || folders->items().empty()) return 0;
  auto rec = std::dynamic_pointer_cast<TRecord>(folders->items().front());
  auto epoch = std::dynamic_pointer_cast<TUInt64>(rec->Get("epoch"));
  return epoch == nullptr ? 0 : epoch->value();
}

TEST_F(CrashRecoveryTest, SigkillMidWorkloadLosesNothing) {
  const std::string binary = DMEMO_SERVER_BINARY;
  if (binary.empty()) GTEST_SKIP() << "dmemo-server binary not provided";

  // Generous client/forwarding retries: an outage while hostB restarts
  // must be bridged by retransmits of the *same* request id — minting a
  // fresh id per retry is exactly what would create duplicates.
  ::setenv("DMEMO_RPC_RETRIES", "200", 1);
  ::setenv("DMEMO_RPC_BACKOFF_MS", "10", 1);
  ::setenv("DMEMO_RPC_BACKOFF_MAX_MS", "100", 1);
  ::setenv("DMEMO_RPC_ATTEMPT_TIMEOUT_MS", "250", 1);

  auto parsed = ParseAdf(
      "APP chaos\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  ProcessClusterOptions opts;
  opts.server_binary = binary;
  opts.work_dir = dir_;
  auto cluster = ProcessCluster::Start(parsed->description, opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  const std::uint64_t epoch_before =
      FetchedEpoch((*cluster)->transport(), (*cluster)->url("hostB"));
  EXPECT_GE(epoch_before, 1u);

  auto client = (*cluster)->Client("hostA");
  ASSERT_TRUE(client.ok()) << client.status();

  constexpr int kMemos = 45;
  for (int i = 0; i < kMemos; ++i) {
    // SIGKILL hostB twice, mid-workload. Every put acked before a kill
    // must survive it; every put spanning an outage must retry through.
    if (i == kMemos / 3 || i == 2 * kMemos / 3) {
      ASSERT_TRUE((*cluster)->KillServer("hostB").ok());
      ASSERT_TRUE((*cluster)->RestartServer("hostB").ok());
    }
    ASSERT_TRUE(
        client->put(Key::Named("k", {static_cast<std::uint32_t>(i)}),
                    MakeInt32(i))
            .ok())
        << "put " << i;
  }

  // Zero lost, zero duplicated: every key holds its value exactly once.
  for (int i = 0; i < kMemos; ++i) {
    const Key key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    auto count = client->count(key);
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(*count, 1u) << "key " << i << " lost or duplicated";
    auto v = client->get_skip(key);
    ASSERT_TRUE(v.ok()) << v.status();
    ASSERT_TRUE(v->has_value()) << "key " << i;
    EXPECT_EQ(std::static_pointer_cast<TInt32>(**v)->value(), i);
  }

  // Each recovery bumped the fencing epoch, observable over the wire.
  const std::uint64_t epoch_after =
      FetchedEpoch((*cluster)->transport(), (*cluster)->url("hostB"));
  EXPECT_EQ(epoch_after, epoch_before + 2);

  (*cluster)->Shutdown();
}

// ---- replicated failover (DESIGN.md §15) --------------------------------

// The kStats record of `url`'s server, or nullptr.
std::shared_ptr<TRecord> FetchedStats(const TransportPtr& transport,
                                      const std::string& url) {
  auto conn = transport->Dial(url);
  if (!conn.ok()) return nullptr;
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request req;
  req.op = Op::kStats;
  auto resp = channel->Call(req);
  channel->Close();
  if (!resp.ok() || !resp->has_value) return nullptr;
  auto decoded = DecodeGraphFromBytes(resp->value);
  if (!decoded.ok()) return nullptr;
  return std::dynamic_pointer_cast<TRecord>(*decoded);
}

// next_seq of `url`'s warm standby for folder server `fs_id`, or 0.
std::uint64_t StandbyNextSeq(const TransportPtr& transport,
                             const std::string& url, int fs_id) {
  auto root = FetchedStats(transport, url);
  if (root == nullptr) return 0;
  auto standbys = std::dynamic_pointer_cast<TList>(root->Get("standbys"));
  if (standbys == nullptr) return 0;
  for (const auto& item : standbys->items()) {
    auto rec = std::dynamic_pointer_cast<TRecord>(item);
    if (rec == nullptr) continue;
    auto id = std::dynamic_pointer_cast<TInt32>(rec->Get("id"));
    if (id == nullptr || id->value() != fs_id) continue;
    auto next = std::dynamic_pointer_cast<TUInt64>(rec->Get("next_seq"));
    return next == nullptr ? 0 : next->value();
  }
  return 0;
}

// Does `url`'s server consider `peer` dead in its failure-detector view?
bool SeesPeerDead(const TransportPtr& transport, const std::string& url,
                  const std::string& peer) {
  auto root = FetchedStats(transport, url);
  if (root == nullptr) return false;
  auto health = std::dynamic_pointer_cast<TList>(root->Get("health"));
  if (health == nullptr) return false;
  for (const auto& item : health->items()) {
    auto rec = std::dynamic_pointer_cast<TRecord>(item);
    if (rec == nullptr) continue;
    auto host = std::dynamic_pointer_cast<TString>(rec->Get("host"));
    auto alive = std::dynamic_pointer_cast<TBool>(rec->Get("alive"));
    if (host != nullptr && alive != nullptr && host->value() == peer &&
        !alive->value()) {
      return true;
    }
  }
  return false;
}

// The Prometheus-style metrics text of `url`'s server ("" on failure).
std::string FetchedMetricsText(const TransportPtr& transport,
                               const std::string& url) {
  auto conn = transport->Dial(url);
  if (!conn.ok()) return "";
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request req;
  req.op = Op::kMetrics;
  auto resp = channel->Call(req);
  channel->Close();
  if (!resp.ok() || !resp->has_value) return "";
  auto decoded = DecodeGraphFromBytes(resp->value);
  if (!decoded.ok()) return "";
  auto root = std::dynamic_pointer_cast<TRecord>(*decoded);
  if (root == nullptr) return "";
  auto text = std::dynamic_pointer_cast<TString>(root->Get("text"));
  return text == nullptr ? "" : text->value();
}

// Scoped env for the chaos children (ProcessCluster children inherit the
// test's environment) and the in-test client channels.
class ScopedEnv {
 public:
  ScopedEnv(std::initializer_list<std::pair<const char*, const char*>> vars) {
    for (const auto& [name, value] : vars) {
      names_.push_back(name);
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    for (const char* name : names_) ::unsetenv(name);
  }

 private:
  std::vector<const char*> names_;
};

// ISSUE 10's headline acceptance: SIGKILL the primary mid-workload and the
// backup auto-promotes — no restart, no operator — with every acked memo
// readable exactly once, the failover metric bumped, and the pre-failover
// epoch fenced.
TEST_F(CrashRecoveryTest, SigkillPrimaryFailsOverToBackupWithoutRestart) {
  const std::string binary = DMEMO_SERVER_BINARY;
  if (binary.empty()) GTEST_SKIP() << "dmemo-server binary not provided";

  ScopedEnv env({{"DMEMO_RPC_RETRIES", "200"},
                 {"DMEMO_RPC_BACKOFF_MS", "10"},
                 {"DMEMO_RPC_BACKOFF_MAX_MS", "100"},
                 {"DMEMO_RPC_ATTEMPT_TIMEOUT_MS", "250"},
                 {"DMEMO_REPL_MODE", "semisync"},
                 {"DMEMO_REPL_TIMEOUT_MS", "2000"},
                 {"DMEMO_HEARTBEAT_INTERVAL_MS", "50"},
                 {"DMEMO_HEARTBEAT_MISSES", "2"}});

  // Sorted ring: hostA's standby lives on its successor hostB.
  auto parsed = ParseAdf(
      "APP fo\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\nhostC 1 t 1\n"
      "FOLDERS\n0 hostA\n"
      "PPC\nhostA <-> hostB 1\nhostB <-> hostC 1\nhostA <-> hostC 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  ProcessClusterOptions opts;
  opts.server_binary = binary;
  opts.work_dir = dir_;
  auto cluster = ProcessCluster::Start(parsed->description, opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  const TransportPtr transport = (*cluster)->transport();

  auto client = (*cluster)->Client("hostC");
  ASSERT_TRUE(client.ok()) << client.status();

  // Phase 1: acked workload against the original primary.
  constexpr int kPhase1 = 15;
  constexpr int kPhase2 = 15;
  for (int i = 0; i < kPhase1; ++i) {
    ASSERT_TRUE(client
                    ->put(Key::Named("k", {static_cast<std::uint32_t>(i)}),
                          MakeInt32(i))
                    .ok())
        << "put " << i;
  }
  // Wait until the warm standby has applied the full acked prefix, so a
  // kill cannot race a semisync ack that degraded to async during the
  // cluster's startup transient.
  const auto ship_deadline = std::chrono::steady_clock::now() + 10s;
  while (StandbyNextSeq(transport, (*cluster)->url("hostB"), 0) <
         kPhase1 + 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), ship_deadline)
        << "standby never caught up to the acked workload";
    std::this_thread::sleep_for(20ms);
  }

  // SIGKILL the primary. It is never restarted: the standby must take
  // over on its own.
  ASSERT_TRUE((*cluster)->KillServer("hostA").ok());

  // Phase 2: the workload continues through the outage; client-side
  // retransmits of the same request ids bridge the promotion window.
  for (int i = kPhase1; i < kPhase1 + kPhase2; ++i) {
    ASSERT_TRUE(client
                    ->put(Key::Named("k", {static_cast<std::uint32_t>(i)}),
                          MakeInt32(i))
                    .ok())
        << "put " << i;
  }

  // hostB now serves folder server 0 under an epoch strictly above both
  // the dead primary's (1) and what its plain restart would open (2).
  const std::uint64_t epoch =
      FetchedEpoch(transport, (*cluster)->url("hostB"));
  EXPECT_GE(epoch, 3u);

  // Zero lost, zero duplicated across the failover.
  for (int i = 0; i < kPhase1 + kPhase2; ++i) {
    const Key key = Key::Named("k", {static_cast<std::uint32_t>(i)});
    auto count = client->count(key);
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(*count, 1u) << "key " << i << " lost or duplicated";
    auto v = client->get_skip(key);
    ASSERT_TRUE(v.ok()) << v.status();
    ASSERT_TRUE(v->has_value()) << "key " << i;
    EXPECT_EQ(std::static_pointer_cast<TInt32>(**v)->value(), i);
  }

  // The promotion is visible in the failover metric...
  const std::string metrics =
      FetchedMetricsText(transport, (*cluster)->url("hostB"));
  EXPECT_NE(metrics.find("dmemo_failover_total{fs=\"0@hostB\"}"),
            std::string::npos)
      << metrics;

  // ...and a zombie pinned to the pre-failover epoch is fenced.
  auto conn = transport->Dial((*cluster)->url("hostB"));
  ASSERT_TRUE(conn.ok()) << conn.status();
  auto channel = RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  Request stale;
  stale.op = Op::kPut;
  stale.app = "fo";
  stale.epoch = 1;
  stale.key = Key::Named("zombie");
  stale.value = Encoded(99);
  auto fenced = channel->Call(stale);
  channel->Close();
  ASSERT_TRUE(fenced.ok()) << fenced.status();
  EXPECT_EQ(fenced->code, StatusCode::kFailedPrecondition) << fenced->message;

  (*cluster)->Shutdown();
}

// Gossip convergence across real processes: in a five-server farm every
// survivor learns of a SIGKILLed peer within a bounded number of protocol
// periods, mostly via piggybacked updates rather than direct probes.
TEST_F(CrashRecoveryTest, GossipConvergesAcrossFiveProcesses) {
  const std::string binary = DMEMO_SERVER_BINARY;
  if (binary.empty()) GTEST_SKIP() << "dmemo-server binary not provided";

  ScopedEnv env({{"DMEMO_HEARTBEAT_INTERVAL_MS", "50"},
                 {"DMEMO_HEARTBEAT_MISSES", "2"}});

  auto parsed = ParseAdf(
      "APP go\nHOSTS\ng0 1 t 1\ng1 1 t 1\ng2 1 t 1\ng3 1 t 1\ng4 1 t 1\n"
      "FOLDERS\n0 g0\n"
      "PPC\ng0 <-> g1 1\ng1 <-> g2 1\ng2 <-> g3 1\ng3 <-> g4 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  ProcessClusterOptions opts;
  opts.server_binary = binary;
  opts.work_dir = dir_;
  auto cluster = ProcessCluster::Start(parsed->description, opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  const TransportPtr transport = (*cluster)->transport();

  // Kill the folder-less g4 so pure membership (not failover) is measured.
  ASSERT_TRUE((*cluster)->KillServer("g4").ok());

  const std::vector<std::string> survivors = {"g0", "g1", "g2", "g3"};
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (const std::string& host : survivors) {
    while (!SeesPeerDead(transport, (*cluster)->url(host), "g4")) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << host << " never saw g4 dead";
      std::this_thread::sleep_for(20ms);
    }
  }

  (*cluster)->Shutdown();
}

}  // namespace
}  // namespace dmemo
