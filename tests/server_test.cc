// Tests for the server layer: protocol round trips, the RPC channel, the
// folder server, and memo servers cooperating over a simulated network —
// including the Figure-2 inter-machine path and relayed topologies.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/folder_server.h"
#include "server/memo_server.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

Bytes Encoded(int v) { return EncodeGraphToBytes(MakeInt32(v)); }

int Decoded(const IoBuf& b) {
  auto v = DecodeGraphFromBytes(b);
  EXPECT_TRUE(v.ok());
  return std::static_pointer_cast<TInt32>(*v)->value();
}

// ---- protocol ----------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  Request req;
  req.op = Op::kPutDelayed;
  req.app = "invert";
  req.target_host = "bonnie";
  req.hop_count = 3;
  req.trace_id = 0xdeadbeefcafef00dULL;
  req.key = Key::Named("future", {1, 2});
  req.key2 = Key::Named("jar");
  req.alts = {Key::Named("a"), Key::Named("b", {9})};
  req.value = Bytes{1, 2, 3};
  req.text = "APP x";

  ByteWriter w;
  req.EncodeTo(w);
  ByteReader r(w.data());
  auto got = Request::DecodeFrom(r);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->op, Op::kPutDelayed);
  EXPECT_EQ(got->app, "invert");
  EXPECT_EQ(got->target_host, "bonnie");
  EXPECT_EQ(got->hop_count, 3);
  EXPECT_EQ(got->trace_id, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(got->key, req.key);
  EXPECT_EQ(got->key2, req.key2);
  EXPECT_EQ(got->alts, req.alts);
  EXPECT_EQ(got->value, req.value);
  EXPECT_EQ(got->text, "APP x");
  EXPECT_TRUE(r.exhausted());
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response resp;
  resp.code = StatusCode::kNotFound;
  resp.message = "gone";
  resp.has_value = true;
  resp.value = Bytes{9};
  resp.has_key = true;
  resp.key = Key::Named("winner");
  resp.count = 17;
  resp.hop_count = 2;
  resp.trace_id = 99;

  ByteWriter w;
  resp.EncodeTo(w);
  ByteReader r(w.data());
  auto got = Response::DecodeFrom(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->code, StatusCode::kNotFound);
  EXPECT_EQ(got->message, "gone");
  EXPECT_EQ(got->value, Bytes{9});
  EXPECT_EQ(got->key, resp.key);
  EXPECT_EQ(got->count, 17u);
  EXPECT_EQ(got->hop_count, 2);
  EXPECT_EQ(got->trace_id, 99u);
}

TEST(ProtocolTest, MalformedOpcodeRejected) {
  ByteWriter w;
  w.u8(200);
  ByteReader r(w.data());
  EXPECT_EQ(Request::DecodeFrom(r).status().code(), StatusCode::kDataLoss);
}

// ---- rpc channel --------------------------------------------------------------

struct ChannelPair {
  RpcChannelPtr client;
  RpcChannelPtr server;
  std::unique_ptr<WorkerPool> pool = std::make_unique<WorkerPool>();
};

ChannelPair MakeChannelPair(RequestHandler handler) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  auto listener = transport->Listen("sim://rpc");
  EXPECT_TRUE(listener.ok());
  ConnectionPtr server_conn;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    EXPECT_TRUE(s.ok());
    server_conn = std::move(*s);
  });
  auto client_conn = transport->Dial("sim://rpc");
  EXPECT_TRUE(client_conn.ok());
  accepter.join();

  ChannelPair pair;
  pair.server = RpcChannel::Create(std::move(server_conn), pair.pool.get(),
                                   std::move(handler));
  pair.client =
      RpcChannel::Create(std::move(*client_conn), nullptr, nullptr);
  return pair;
}

TEST(RpcChannelTest, CallReturnsHandlerResponse) {
  auto pair = MakeChannelPair([](const Request& req) {
    Response resp;
    resp.count = static_cast<std::uint64_t>(req.hop_count) + 1;
    return resp;
  });
  Request req;
  req.hop_count = 4;
  auto resp = pair.client->Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->count, 5u);
  pair.client->Close();
  pair.server->Close();
}

TEST(RpcChannelTest, ConcurrentCallsMultiplex) {
  auto pair = MakeChannelPair([](const Request& req) {
    // Earlier requests sleep longer: responses arrive out of order.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(40 - req.hop_count * 10));
    Response resp;
    resp.count = req.hop_count;
    return resp;
  });
  std::vector<std::thread> callers;
  std::atomic<int> correct{0};
  for (std::uint8_t i = 1; i <= 4; ++i) {
    callers.emplace_back([&pair, &correct, i] {
      Request req;
      req.hop_count = i;
      auto resp = pair.client->Call(req);
      if (resp.ok() && resp->count == i) correct.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(correct.load(), 4);
  pair.client->Close();
  pair.server->Close();
}

TEST(RpcChannelTest, CallForTimesOutOnSlowHandler) {
  auto pair = MakeChannelPair([](const Request&) {
    std::this_thread::sleep_for(200ms);
    return Response{};
  });
  Request req;
  auto resp = pair.client->CallFor(req, 30ms);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->has_value());  // nullopt (we reused optional presence)
  EXPECT_FALSE((*resp).has_value());
  pair.client->Close();
  pair.server->Close();
}

TEST(RpcChannelTest, CloseFailsOutstandingCalls) {
  auto pair = MakeChannelPair([](const Request&) {
    std::this_thread::sleep_for(1s);  // outlives the close below
    return Response{};
  });
  std::thread closer([&] {
    std::this_thread::sleep_for(30ms);
    pair.client->Close();
  });
  Request req;
  auto resp = pair.client->Call(req);
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  closer.join();
  pair.server->Close();
  pair.pool->Shutdown();
}

TEST(RpcChannelTest, NullHandlerRejectsInboundRequests) {
  auto pair = MakeChannelPair([](const Request&) { return Response{}; });
  // Send a request *from the server side*; the client has no handler.
  Request req;
  auto resp = pair.server->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kFailedPrecondition);
  pair.client->Close();
  pair.server->Close();
}

// ---- folder server -------------------------------------------------------------

TEST(FolderServerTest, ServesPutAndGet) {
  FolderServer fs(0, "hostA");
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named("f");
  put.value = Encoded(5);
  EXPECT_EQ(fs.Handle(put).code, StatusCode::kOk);

  Request get;
  get.op = Op::kGet;
  get.app = "t";
  get.key = Key::Named("f");
  Response resp = fs.Handle(get);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  ASSERT_TRUE(resp.has_value);
  EXPECT_EQ(Decoded(resp.value), 5);
  EXPECT_EQ(fs.requests_served(), 2u);
}

TEST(FolderServerTest, GetAltReportsWinningKey) {
  FolderServer fs(0, "hostA");
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named("right");
  put.value = Encoded(1);
  fs.Handle(put);

  Request alt;
  alt.op = Op::kGetAlt;
  alt.app = "t";
  alt.alts = {Key::Named("left"), Key::Named("right")};
  Response resp = fs.Handle(alt);
  EXPECT_EQ(resp.code, StatusCode::kOk);
  ASSERT_TRUE(resp.has_key);
  EXPECT_EQ(resp.key, Key::Named("right"));
}

TEST(FolderServerTest, ShutdownCancelsParkedGet) {
  FolderServer fs(0, "hostA");
  std::thread parked([&] {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = Key::Named("never");
    Response resp = fs.Handle(get);
    EXPECT_EQ(resp.code, StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(30ms);
  fs.Shutdown();
  parked.join();
}

TEST(FolderServerTest, RegisterAppIsAMemoServerOp) {
  FolderServer fs(0, "hostA");
  Request reg;
  reg.op = Op::kRegisterApp;
  EXPECT_EQ(fs.Handle(reg).code, StatusCode::kInvalidArgument);
}

// ---- memo servers over a simulated network -------------------------------------

constexpr const char* kTwoHostAdf =
    "APP t\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
    "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n";

// Line topology: traffic from A to C must relay through B (Figure 2 with an
// intermediate machine).
constexpr const char* kLineAdf =
    "APP t\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\nhostC 1 t 1\n"
    "FOLDERS\n0 hostC\n"  // every folder lives on C
    "PPC\nhostA <-> hostB 1\nhostB <-> hostC 1\n";

class MemoServerFarm {
 public:
  explicit MemoServerFarm(const std::string& adf_text) {
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
    auto parsed = ParseAdf(adf_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    adf_ = parsed->description;

    std::unordered_map<std::string, std::string> peers;
    for (const auto& host : adf_.hosts) {
      peers[host.name] = "sim://" + host.name;
    }
    for (const auto& host : adf_.hosts) {
      MemoServerOptions opts;
      opts.host = host.name;
      opts.listen_url = peers[host.name];
      opts.peers = peers;
      auto server = MemoServer::Start(transport_, opts);
      EXPECT_TRUE(server.ok()) << server.status();
      servers_[host.name] = std::move(*server);
      EXPECT_TRUE(servers_[host.name]->RegisterApp(adf_).ok());
    }
  }

  ~MemoServerFarm() {
    for (auto& [name, server] : servers_) server->Shutdown();
  }

  MemoServer& at(const std::string& host) { return *servers_.at(host); }
  TransportPtr transport() { return transport_; }
  const AppDescription& adf() const { return adf_; }

  // A client RPC channel to `host`'s memo server.
  RpcChannelPtr Connect(const std::string& host) {
    auto conn = transport_->Dial("sim://" + host);
    EXPECT_TRUE(conn.ok()) << conn.status();
    return RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  }

 private:
  SimNetworkPtr network_;
  TransportPtr transport_;
  AppDescription adf_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
};

TEST(MemoServerTest, PutOnOneMachineGetFromAnother) {
  MemoServerFarm farm(kTwoHostAdf);
  auto a = farm.Connect("hostA");
  auto b = farm.Connect("hostB");

  // Spread puts over many folders so both machines own some.
  for (int i = 0; i < 16; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("f", {static_cast<std::uint32_t>(i)});
    put.value = Encoded(i);
    auto resp = a->Call(put);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  }
  for (int i = 0; i < 16; ++i) {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = Key::Named("f", {static_cast<std::uint32_t>(i)});
    auto resp = b->Call(get);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    ASSERT_TRUE(resp->has_value);
    EXPECT_EQ(Decoded(resp->value), i);
  }
  // Cross-machine traffic existed: at least one side forwarded.
  EXPECT_GT(farm.at("hostA").stats().forwarded +
                farm.at("hostB").stats().forwarded,
            0u);
  a->Close();
  b->Close();
}

TEST(MemoServerTest, BlockingGetAcrossMachines) {
  MemoServerFarm farm(kTwoHostAdf);
  auto a = farm.Connect("hostA");
  auto b = farm.Connect("hostB");

  Key key = Key::Named("rendezvous");
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = key;
    auto resp = a->Call(get);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk);
    EXPECT_EQ(Decoded(resp->value), 77);
    got = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(got.load());
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = key;
  put.value = Encoded(77);
  ASSERT_EQ(b->Call(put)->code, StatusCode::kOk);
  consumer.join();
  EXPECT_TRUE(got.load());
  a->Close();
  b->Close();
}

TEST(MemoServerTest, LineTopologyRelaysThroughMiddle) {
  MemoServerFarm farm(kLineAdf);
  auto a = farm.Connect("hostA");

  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named("far");
  put.value = Encoded(3);
  auto resp = a->Call(put);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  // A -> B -> C: two hops recorded by the relay chain.
  EXPECT_EQ(resp->hop_count, 2);
  EXPECT_GE(farm.at("hostB").stats().relayed, 1u);
  a->Close();
}

TEST(MemoServerTest, GetAltSpanningMachines) {
  MemoServerFarm farm(kTwoHostAdf);
  // Find two keys owned by different machines.
  auto routing = RoutingTable::Build(farm.adf());
  ASSERT_TRUE(routing.ok());
  Key on_a, on_b;
  bool have_a = false, have_b = false;
  for (std::uint32_t i = 0; i < 64 && !(have_a && have_b); ++i) {
    Key k = Key::Named("alt", {i});
    auto owner = routing->ServerForKey(QualifiedKey{"t", k}.ToBytes());
    ASSERT_TRUE(owner.ok());
    if (owner->host == "hostA" && !have_a) {
      on_a = k;
      have_a = true;
    } else if (owner->host == "hostB" && !have_b) {
      on_b = k;
      have_b = true;
    }
  }
  ASSERT_TRUE(have_a && have_b);

  auto client = farm.Connect("hostA");
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    Request alt;
    alt.op = Op::kGetAlt;
    alt.app = "t";
    alt.alts = {on_a, on_b};
    auto resp = client->Call(alt);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    EXPECT_EQ(resp->key, on_b);
    EXPECT_EQ(Decoded(resp->value), 42);
    got = true;
  });
  std::this_thread::sleep_for(40ms);
  EXPECT_FALSE(got.load());
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = on_b;
  put.value = Encoded(42);
  ASSERT_EQ(client->Call(put)->code, StatusCode::kOk);
  consumer.join();
  client->Close();
}

TEST(MemoServerTest, UnregisteredAppRejected) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  Request get;
  get.op = Op::kGet;
  get.app = "ghost-app";
  get.key = Key::Named("f");
  auto resp = client->Call(get);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kUnavailable);
  client->Close();
}

TEST(MemoServerTest, RegisterAppOverTheWire) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  Request reg;
  reg.op = Op::kRegisterApp;
  reg.text =
      "APP wire\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n";
  ASSERT_EQ(client->Call(reg)->code, StatusCode::kOk);

  Request put;
  put.op = Op::kPut;
  put.app = "wire";
  put.key = Key::Named("f");
  put.value = Encoded(1);
  // hostB has not seen the registration: if the key lands there this put
  // fails; register there too, then it must succeed.
  auto b = farm.Connect("hostB");
  ASSERT_EQ(b->Call(reg)->code, StatusCode::kOk);
  EXPECT_EQ(client->Call(put)->code, StatusCode::kOk);
  client->Close();
  b->Close();
}

TEST(MemoServerTest, CountReflectsFolderContents) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  Key key = Key::Named("counted");
  for (int i = 0; i < 3; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = key;
    put.value = Encoded(i);
    ASSERT_EQ(client->Call(put)->code, StatusCode::kOk);
  }
  Request count;
  count.op = Op::kCount;
  count.app = "t";
  count.key = key;
  auto resp = client->Call(count);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->count, 3u);
  client->Close();
}

TEST(MemoServerTest, PingWorksWithoutRegistration) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostB");
  Request ping;
  ping.op = Op::kPing;
  EXPECT_EQ(client->Call(ping)->code, StatusCode::kOk);
  client->Close();
}

TEST(MemoServerTest, MultipleFolderServersOnOneHostSplitTraffic) {
  // "There can be 0, 1, or more folder servers per machine, each having
  // exclusive access to its folders." Three servers on one machine: keys
  // spread across all of them and every memo stays retrievable.
  MemoServerFarm farm(
      "APP t\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n1 hostA\n2 hostA\n");
  auto client = farm.Connect("hostA");
  constexpr std::uint32_t kKeys = 60;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("spread", {i});
    put.value = Encoded(static_cast<int>(i));
    ASSERT_EQ(client->Call(put)->code, StatusCode::kOk);
  }
  // Each folder server saw a share of the deposits.
  auto& server = farm.at("hostA");
  int busy_servers = 0;
  std::uint64_t total = 0;
  for (int id : server.folder_server_ids()) {
    const std::uint64_t puts =
        server.folder_server(id)->directory_stats().puts;
    total += puts;
    if (puts > 0) ++busy_servers;
  }
  EXPECT_EQ(total, kKeys);
  EXPECT_EQ(busy_servers, 3);
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    Request get;
    get.op = Op::kGet;
    get.app = "t";
    get.key = Key::Named("spread", {i});
    auto resp = client->Call(get);
    ASSERT_EQ(resp->code, StatusCode::kOk);
    EXPECT_EQ(Decoded(resp->value), static_cast<int>(i));
  }
  client->Close();
}

TEST(MemoServerTest, StatsOpReturnsIntrospectionRecord) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  // Generate some traffic first.
  for (int i = 0; i < 5; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("s", {static_cast<std::uint32_t>(i)});
    put.value = Encoded(i);
    ASSERT_EQ(client->Call(put)->code, StatusCode::kOk);
  }
  Request stats;
  stats.op = Op::kStats;
  auto resp = client->Call(stats);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->code, StatusCode::kOk);
  ASSERT_TRUE(resp->has_value);
  auto decoded = DecodeGraphFromBytes(resp->value);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  auto rec = std::static_pointer_cast<TRecord>(*decoded);
  EXPECT_EQ(std::static_pointer_cast<TString>(rec->Get("host"))->value(),
            "hostA");
  EXPECT_GE(
      std::static_pointer_cast<TUInt64>(rec->Get("requests"))->value(), 5u);
  ASSERT_NE(rec->Get("folder_servers"), nullptr);
  ASSERT_NE(rec->Get("pool"), nullptr);
  client->Close();
}

TEST(MemoServerTest, ThreadCachingObservableUnderLoad) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  for (int i = 0; i < 50; ++i) {
    Request ping;
    ping.op = Op::kPing;
    ASSERT_EQ(client->Call(ping)->code, StatusCode::kOk);
  }
  auto stats = farm.at("hostA").pool_stats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_LT(stats.threads_spawned, 50u);
  client->Close();
}

}  // namespace
}  // namespace dmemo
