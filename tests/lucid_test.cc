// Tests for the Lucid stream layer: the classic stream programs (nat, fib,
// running sums, sieve-style filtering) evaluated demand-driven over the
// memo space.
#include <gtest/gtest.h>

#include <thread>

#include "lang/lucid.h"

namespace dmemo {
namespace {

std::int64_t I64(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt64>(v)->value();
}

std::vector<std::int64_t> Ints(const std::vector<TransferablePtr>& vs) {
  std::vector<std::int64_t> out;
  for (const auto& v : vs) out.push_back(I64(v));
  return out;
}

class LucidTest : public ::testing::Test {
 protected:
  LocalSpacePtr space_ = std::make_shared<LocalSpace>("lucid");
  Memo memo_ = Memo::Local(space_);
  LucidProgram p_{memo_};
};

TEST_F(LucidTest, ConstantStream) {
  StreamId sevens = p_.Constant(MakeInt64(7));
  auto vs = p_.Take(sevens, 5);
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(Ints(*vs), (std::vector<std::int64_t>{7, 7, 7, 7, 7}));
}

TEST_F(LucidTest, NatViaRecursiveFby) {
  // nat = 0 fby (nat + 1)  — the canonical Lucid equation.
  StreamId nat = p_.Forward();
  StreamId one = p_.Constant(MakeInt64(1));
  StreamId nat_plus_1 = p_.Map(AddFn(), {nat, one});
  ASSERT_TRUE(p_.Bind(nat, p_.Fby(p_.Constant(MakeInt64(0)), nat_plus_1)).ok());
  auto vs = p_.Take(nat, 8);
  ASSERT_TRUE(vs.ok()) << vs.status();
  EXPECT_EQ(Ints(*vs), (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(LucidTest, FibonacciViaFbyAndNext) {
  // fib = 0 fby (1 fby (fib + next fib))
  StreamId fib = p_.Forward();
  StreamId sum = p_.Map(AddFn(), {fib, p_.Next(fib)});
  StreamId tail = p_.Fby(p_.Constant(MakeInt64(1)), sum);
  ASSERT_TRUE(p_.Bind(fib, p_.Fby(p_.Constant(MakeInt64(0)), tail)).ok());
  auto vs = p_.Take(fib, 10);
  ASSERT_TRUE(vs.ok()) << vs.status();
  EXPECT_EQ(Ints(*vs),
            (std::vector<std::int64_t>{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}));
}

TEST_F(LucidTest, RunningSumOfAnInput) {
  // total = x fby (total + next x)
  StreamId x = p_.Input();
  StreamId total = p_.Forward();
  StreamId step = p_.Map(AddFn(), {total, p_.Next(x)});
  ASSERT_TRUE(p_.Bind(total, p_.Fby(x, step)).ok());
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(p_.Feed(x, i, MakeInt64(static_cast<std::int64_t>(i + 1)))
                    .ok());
  }
  auto vs = p_.Take(total, 6);
  ASSERT_TRUE(vs.ok()) << vs.status();
  EXPECT_EQ(Ints(*vs), (std::vector<std::int64_t>{1, 3, 6, 10, 15, 21}));
}

TEST_F(LucidTest, FirstAndNext) {
  StreamId x = p_.Input();
  for (std::uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(p_.Feed(x, i, MakeInt64(10 + i)).ok());
  }
  auto first = p_.Take(p_.First(x), 3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(Ints(*first), (std::vector<std::int64_t>{10, 10, 10}));
  auto next = p_.Take(p_.Next(x), 3);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(Ints(*next), (std::vector<std::int64_t>{11, 12, 13}));
}

TEST_F(LucidTest, WheneverFiltersAndCompacts) {
  // evens = nat whenever (nat mod 2 == 0)
  StreamId nat = p_.Forward();
  StreamId one = p_.Constant(MakeInt64(1));
  ASSERT_TRUE(p_.Bind(nat, p_.Fby(p_.Constant(MakeInt64(0)),
                                  p_.Map(AddFn(), {nat, one})))
                  .ok());
  StreamId is_even =
      p_.Map(IntPredicateFn([](std::int64_t v) { return v % 2 == 0; }),
             {nat});
  StreamId evens = p_.Whenever(nat, is_even);
  auto vs = p_.Take(evens, 5);
  ASSERT_TRUE(vs.ok()) << vs.status();
  EXPECT_EQ(Ints(*vs), (std::vector<std::int64_t>{0, 2, 4, 6, 8}));
}

TEST_F(LucidTest, MemoizationComputesEachCellOnce) {
  StreamId nat = p_.Forward();
  StreamId one = p_.Constant(MakeInt64(1));
  ASSERT_TRUE(p_.Bind(nat, p_.Fby(p_.Constant(MakeInt64(0)),
                                  p_.Map(AddFn(), {nat, one})))
                  .ok());
  ASSERT_TRUE(p_.Take(nat, 50).ok());
  const std::uint64_t after_first = p_.cells_computed();
  ASSERT_TRUE(p_.Take(nat, 50).ok());  // fully memoized: no recomputation
  EXPECT_EQ(p_.cells_computed(), after_first);
  // A further demand computes only the new cells.
  ASSERT_TRUE(p_.At(nat, 50).ok());
  EXPECT_GT(p_.cells_computed(), after_first);
}

TEST_F(LucidTest, DemandDrivenComputesOnlyWhatIsNeeded) {
  // Demand a single late element of a map over an input; only the needed
  // input element must be touched (blocking on the others would hang).
  StreamId x = p_.Input();
  StreamId doubled = p_.Map(MulFn(), {x, p_.Constant(MakeInt64(2))});
  ASSERT_TRUE(p_.Feed(x, 7, MakeInt64(21)).ok());
  auto v = p_.At(doubled, 7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(I64(*v), 42);  // elements 0..6 were never demanded
}

TEST_F(LucidTest, InputElementBlocksUntilFed) {
  StreamId x = p_.Input();
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = p_.At(x, 0);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(I64(*v), 5);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(p_.Feed(x, 0, MakeInt64(5)).ok());
  consumer.join();
}

TEST_F(LucidTest, UnboundForwardErrors) {
  StreamId dangling = p_.Forward();
  EXPECT_EQ(p_.At(dangling, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LucidTest, DoubleBindRejected) {
  StreamId fwd = p_.Forward();
  StreamId c = p_.Constant(MakeInt64(1));
  ASSERT_TRUE(p_.Bind(fwd, c).ok());
  EXPECT_EQ(p_.Bind(fwd, c).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(p_.Bind(c, c).code(), StatusCode::kInvalidArgument);
}

TEST_F(LucidTest, FeedRejectsNonInputs) {
  StreamId c = p_.Constant(MakeInt64(1));
  EXPECT_EQ(p_.Feed(c, 0, MakeInt64(2)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LucidTest, WheneverNeverTrueErrorsInsteadOfSpinning) {
  StreamId x = p_.Constant(MakeInt64(1));
  StreamId never =
      p_.Map(IntPredicateFn([](std::int64_t) { return false; }), {x});
  auto v = p_.At(p_.Whenever(x, never), 0);
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST_F(LucidTest, DeepDirectDemandGuarded) {
  StreamId nat = p_.Forward();
  StreamId one = p_.Constant(MakeInt64(1));
  ASSERT_TRUE(p_.Bind(nat, p_.Fby(p_.Constant(MakeInt64(0)),
                                  p_.Map(AddFn(), {nat, one})))
                  .ok());
  // Cold demand of a very late element recurses past the guard.
  auto v = p_.At(nat, 100'000);
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  // The supported route works: evaluate front to back.
  auto taken = p_.Take(nat, 300);
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(I64(taken->back()), 299);
}

}  // namespace
}  // namespace dmemo
