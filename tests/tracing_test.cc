// End-to-end trace propagation: a request's 64-bit trace id travels
// client -> memo server -> (relay) -> folder server and back, every
// component records a span into the process TraceRing, and Op::kMetrics
// exposes the whole tree (metrics + spans) as a TRecord.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <unordered_map>

#include "adf/adf.h"
#include "server/folder_server.h"
#include "server/memo_server.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

constexpr const char* kTwoHostAdf =
    "APP t\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
    "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n";

class MemoServerFarm {
 public:
  explicit MemoServerFarm(const std::string& adf_text) {
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
    auto parsed = ParseAdf(adf_text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    adf_ = parsed->description;

    std::unordered_map<std::string, std::string> peers;
    for (const auto& host : adf_.hosts) {
      peers[host.name] = "sim://trace-" + host.name;
    }
    for (const auto& host : adf_.hosts) {
      MemoServerOptions opts;
      opts.host = host.name;
      opts.listen_url = peers[host.name];
      opts.peers = peers;
      auto server = MemoServer::Start(transport_, opts);
      EXPECT_TRUE(server.ok()) << server.status();
      servers_[host.name] = std::move(*server);
      EXPECT_TRUE(servers_[host.name]->RegisterApp(adf_).ok());
    }
  }

  ~MemoServerFarm() {
    for (auto& [name, server] : servers_) server->Shutdown();
  }

  MemoServer& at(const std::string& host) { return *servers_.at(host); }

  RpcChannelPtr Connect(const std::string& host) {
    auto conn = transport_->Dial("sim://trace-" + host);
    EXPECT_TRUE(conn.ok()) << conn.status();
    return RpcChannel::Create(std::move(*conn), nullptr, nullptr);
  }

 private:
  SimNetworkPtr network_;
  TransportPtr transport_;
  AppDescription adf_;
  std::map<std::string, std::unique_ptr<MemoServer>> servers_;
};

// Spans recorded for one trace id, in recording order.
std::vector<SpanRecord> SpansFor(std::uint64_t trace_id) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& span : TraceRing::Global().Snapshot()) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

TEST(TracingTest, TraceIdPropagatesAcrossServers) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");

  // Put enough distinct folders through hostA that both machines own some;
  // each request carries its own explicit trace id.
  std::map<std::uint64_t, Key> traces;
  for (std::uint32_t i = 0; i < 16; ++i) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("trace-f", {i});
    put.value = EncodeGraphToBytes(MakeInt32(static_cast<int>(i)));
    put.trace_id = NextTraceId();
    auto resp = client->Call(put);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    // The response always echoes the request's trace id.
    EXPECT_EQ(resp->trace_id, put.trace_id);
    traces[put.trace_id] = put.key;
  }

  // Every trace went through the entry memo server and a folder server.
  bool saw_cross_machine = false;
  for (const auto& [trace_id, key] : traces) {
    auto spans = SpansFor(trace_id);
    ASSERT_FALSE(spans.empty()) << "no spans for trace";
    std::set<std::string> components;
    for (const SpanRecord& span : spans) {
      components.insert(span.component);
      EXPECT_EQ(span.op, "put");
      EXPECT_TRUE(span.ok);
    }
    EXPECT_TRUE(components.contains("memo:hostA"));
    bool fs_span = false;
    for (const std::string& c : components) {
      if (c.rfind("fs:", 0) == 0) fs_span = true;
    }
    EXPECT_TRUE(fs_span) << "trace never reached a folder server";
    // Keys owned by hostB show the full forwarded chain: both memo servers
    // plus hostB's folder server, joined by one trace id.
    if (components.contains("memo:hostB")) {
      saw_cross_machine = true;
      bool fs_on_b = false;
      for (const std::string& c : components) {
        if (c.rfind("fs:", 0) == 0 && c.find("@hostB") != std::string::npos) {
          fs_on_b = true;
        }
      }
      EXPECT_TRUE(fs_on_b);
    }
  }
  EXPECT_TRUE(saw_cross_machine)
      << "16 folders never hashed to the remote machine";
  client->Close();
}

TEST(TracingTest, UntracedRequestGetsAnAssignedId) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  Request ping;
  ping.op = Op::kPing;
  ping.app = "t";
  ASSERT_EQ(ping.trace_id, 0u);
  auto resp = client->Call(ping);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->code, StatusCode::kOk);
  // The first server mints an id for untraced requests and echoes it.
  EXPECT_NE(resp->trace_id, 0u);
  client->Close();
}

TEST(TracingTest, MetricsOpReturnsTreeAndSpans) {
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");

  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named("metrics-probe");
  put.value = EncodeGraphToBytes(MakeInt32(7));
  put.trace_id = NextTraceId();
  auto put_resp = client->Call(put);
  ASSERT_TRUE(put_resp.ok());
  ASSERT_EQ(put_resp->code, StatusCode::kOk) << put_resp->message;

  Request metrics;
  metrics.op = Op::kMetrics;
  metrics.app = "t";
  auto resp = client->Call(metrics);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  ASSERT_TRUE(resp->has_value);

  auto decoded = DecodeGraphFromBytes(resp->value);
  ASSERT_TRUE(decoded.ok());
  auto root = std::static_pointer_cast<TRecord>(*decoded);
  EXPECT_EQ(std::static_pointer_cast<TString>(root->Get("host"))->value(),
            "hostA");

  // The Prometheus exposition covers the server's own histograms.
  const std::string text =
      std::static_pointer_cast<TString>(root->Get("text"))->value();
  EXPECT_NE(text.find("dmemo_server_op_latency_us"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);

  auto metric_list = std::static_pointer_cast<TList>(root->Get("metrics"));
  ASSERT_NE(metric_list, nullptr);
  EXPECT_GT(metric_list->items().size(), 0u);
  bool found_put_histogram = false;
  for (const auto& item : metric_list->items()) {
    auto rec = std::static_pointer_cast<TRecord>(item);
    auto name = std::static_pointer_cast<TString>(rec->Get("name"))->value();
    auto labels =
        std::static_pointer_cast<TString>(rec->Get("labels"))->value();
    if (name == "dmemo_server_op_latency_us" &&
        labels.find("op=\"put\"") != std::string::npos &&
        labels.find("host=\"hostA\"") != std::string::npos) {
      found_put_histogram = true;
      auto count =
          std::static_pointer_cast<TUInt64>(rec->Get("count"))->value();
      EXPECT_GT(count, 0u);
    }
  }
  EXPECT_TRUE(found_put_histogram);

  // The span dump contains the probe's trace.
  auto spans = std::static_pointer_cast<TList>(root->Get("spans"));
  ASSERT_NE(spans, nullptr);
  bool found_probe_span = false;
  for (const auto& item : spans->items()) {
    auto rec = std::static_pointer_cast<TRecord>(item);
    auto id = std::static_pointer_cast<TUInt64>(rec->Get("trace_id"))->value();
    if (id == put.trace_id) found_probe_span = true;
  }
  EXPECT_TRUE(found_probe_span);
  client->Close();
}

TEST(TracingTest, SamplingGatesSpansAndExemplars) {
  // With the sample rate at 0 nothing about a request is retained: no
  // spans, and the latency histogram counts it without attaching an
  // exemplar. Back at rate 1 both reappear. This is the invariant that
  // makes exemplars trustworthy: a bucket's exemplar always names a trace
  // whose spans were actually recorded.
  const double original = TraceSampleRate();
  MemoServerFarm farm(kTwoHostAdf);
  auto client = farm.Connect("hostA");
  Histogram* put_hist = MetricsRegistry::Global().GetHistogram(
      "dmemo_server_op_latency_us", "host=\"hostA\",op=\"put\"");

  auto put_once = [&](std::uint64_t trace_id) {
    Request put;
    put.op = Op::kPut;
    put.app = "t";
    put.key = Key::Named("sampled-folder");
    put.value = EncodeGraphToBytes(MakeInt32(1));
    put.trace_id = trace_id;
    auto resp = client->Call(put);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
  };

  SetTraceSampleRate(0.0);
  const std::uint64_t unsampled = NextTraceId();
  put_once(unsampled);
  EXPECT_TRUE(SpansFor(unsampled).empty());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_NE(put_hist->ExemplarTraceId(i), unsampled);
  }

  SetTraceSampleRate(1.0);
  const std::uint64_t sampled = NextTraceId();
  put_once(sampled);
  EXPECT_FALSE(SpansFor(sampled).empty());
  bool exemplar_found = false;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (put_hist->ExemplarTraceId(i) == sampled) exemplar_found = true;
  }
  EXPECT_TRUE(exemplar_found)
      << "sampled put left no exemplar on the op-latency histogram";

  // The kMetrics payload carries the exemplar out to dmemo-stat/dmemo-top.
  Request metrics;
  metrics.op = Op::kMetrics;
  metrics.app = "t";
  auto resp = client->Call(metrics);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_TRUE(resp->has_value);
  auto decoded = DecodeGraphFromBytes(resp->value);
  ASSERT_TRUE(decoded.ok());
  auto root = std::static_pointer_cast<TRecord>(*decoded);
  auto metric_list = std::static_pointer_cast<TList>(root->Get("metrics"));
  ASSERT_NE(metric_list, nullptr);
  bool wire_exemplar_found = false;
  for (const auto& item : metric_list->items()) {
    auto rec = std::static_pointer_cast<TRecord>(item);
    auto exemplars = std::static_pointer_cast<TList>(rec->Get("exemplars"));
    if (exemplars == nullptr) continue;
    for (const auto& e : exemplars->items()) {
      if (std::static_pointer_cast<TUInt64>(e)->value() == sampled) {
        wire_exemplar_found = true;
      }
    }
  }
  EXPECT_TRUE(wire_exemplar_found)
      << "exemplar did not survive the kMetrics encoding";

  SetTraceSampleRate(original);
  client->Close();
}

TEST(TracingTest, FolderServerRejectsMetricsOp) {
  FolderServer fs(0, "hostX");
  Request req;
  req.op = Op::kMetrics;
  EXPECT_EQ(fs.Handle(req).code, StatusCode::kInvalidArgument);
}

TEST(TracingTest, SlowOpWarningCounter) {
  // Threshold 0: every request is "slow", so the counter must move.
  const auto original = SlowOpThreshold();
  SetSlowOpThreshold(0ms);
  FolderServer fs(7, "slowhost");
  Counter* slow = MetricsRegistry::Global().GetCounter(
      "dmemo_folder_slow_ops_total", "fs=\"7@slowhost\"");
  const std::uint64_t before = slow->Value();
  Request put;
  put.op = Op::kPut;
  put.app = "t";
  put.key = Key::Named("slow-folder");
  put.value = Bytes{1};
  put.trace_id = NextTraceId();
  EXPECT_EQ(fs.Handle(put).code, StatusCode::kOk);
  EXPECT_GT(slow->Value(), before);
  SetSlowOpThreshold(original);

  // Above-threshold requests do not trip the counter.
  SetSlowOpThreshold(10'000ms);
  const std::uint64_t after = slow->Value();
  put.key = Key::Named("fast-folder");
  EXPECT_EQ(fs.Handle(put).code, StatusCode::kOk);
  EXPECT_EQ(slow->Value(), after);
  SetSlowOpThreshold(original);
}

}  // namespace
}  // namespace dmemo
