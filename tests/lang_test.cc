// Tests for the language layer the paper says was built on the API (Sec. 2):
// the dataflow engine (Lucid-style networks over put_delayed triggers) and
// the message-driven actor layer (MDC-style pattern dispatch).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lang/actors.h"
#include "lang/dataflow.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

DataflowOp Add() {
  return [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
    int sum = 0;
    for (const auto& a : args) sum += IntOf(a);
    return MakeInt32(sum);
  };
}

DataflowOp Mul() {
  return [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
    int prod = 1;
    for (const auto& a : args) prod *= IntOf(a);
    return MakeInt32(prod);
  };
}

class DataflowTest : public ::testing::Test {
 protected:
  LocalSpacePtr space_ = std::make_shared<LocalSpace>("dataflow");
  Memo memo_ = Memo::Local(space_);
};

TEST_F(DataflowTest, DiamondGraphEvaluates) {
  //   a   b
  //    \ / \
  //  sum    prod     -> result = (a+b) * (b*b)
  //      \  /
  //     result
  DataflowGraph graph(memo_);
  NodeId a = graph.AddInput();
  NodeId b = graph.AddInput();
  NodeId sum = graph.AddNode(Add(), {a, b});
  NodeId prod = graph.AddNode(Mul(), {b, b});
  NodeId result = graph.AddNode(Mul(), {sum, prod});
  ASSERT_TRUE(graph.Start(2).ok());
  ASSERT_TRUE(graph.Feed(a, MakeInt32(3)).ok());
  ASSERT_TRUE(graph.Feed(b, MakeInt32(4)).ok());
  auto v = graph.Await(result);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(IntOf(*v), (3 + 4) * (4 * 4));
  EXPECT_EQ(graph.nodes_fired(), 3u);
}

TEST_F(DataflowTest, NothingFiresUntilOperandsArrive) {
  DataflowGraph graph(memo_);
  NodeId a = graph.AddInput();
  NodeId b = graph.AddInput();
  NodeId sum = graph.AddNode(Add(), {a, b});
  (void)sum;
  ASSERT_TRUE(graph.Start(2).ok());
  ASSERT_TRUE(graph.Feed(a, MakeInt32(1)).ok());
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(graph.nodes_fired(), 0u);  // b still missing: demand unmet
  ASSERT_TRUE(graph.Feed(b, MakeInt32(2)).ok());
  ASSERT_TRUE(graph.Await(sum).ok());
  EXPECT_EQ(graph.nodes_fired(), 1u);
}

TEST_F(DataflowTest, ConstantNodesFireImmediately) {
  DataflowGraph graph(memo_);
  NodeId c = graph.AddNode(
      [](std::span<const TransferablePtr>) -> Result<TransferablePtr> {
        return MakeInt32(99);
      },
      {});
  ASSERT_TRUE(graph.Start(1).ok());
  auto v = graph.Await(c);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 99);
}

TEST_F(DataflowTest, DeepPipelineEvaluates) {
  // in -> +1 -> +1 -> ... (32 stages): exercises chained triggering.
  DataflowGraph graph(memo_);
  NodeId prev = graph.AddInput();
  for (int i = 0; i < 32; ++i) {
    prev = graph.AddNode(
        [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
          return MakeInt32(IntOf(args[0]) + 1);
        },
        {prev});
  }
  ASSERT_TRUE(graph.Start(4).ok());
  ASSERT_TRUE(graph.Feed(0, MakeInt32(0)).ok());
  auto v = graph.Await(prev);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 32);
}

TEST_F(DataflowTest, WideFanOutEvaluatesInParallel) {
  DataflowGraph graph(memo_);
  NodeId in = graph.AddInput();
  std::vector<NodeId> squares;
  for (int i = 0; i < 16; ++i) {
    squares.push_back(graph.AddNode(Mul(), {in, in}));
  }
  NodeId total = graph.AddNode(Add(), squares);
  ASSERT_TRUE(graph.Start(4).ok());
  ASSERT_TRUE(graph.Feed(in, MakeInt32(2)).ok());
  auto v = graph.Await(total);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 16 * 4);
  EXPECT_EQ(graph.nodes_fired(), 17u);
}

TEST_F(DataflowTest, OperationFailureSurfacesAtAwait) {
  DataflowGraph graph(memo_);
  NodeId in = graph.AddInput();
  NodeId bad = graph.AddNode(
      [](std::span<const TransferablePtr>) -> Result<TransferablePtr> {
        return InvalidArgumentError("division by cucumber");
      },
      {in});
  ASSERT_TRUE(graph.Start(1).ok());
  ASSERT_TRUE(graph.Feed(in, MakeInt32(1)).ok());
  auto v = graph.Await(bad);
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_NE(v.status().message().find("cucumber"), std::string::npos);
}

TEST_F(DataflowTest, FeedRejectsNonInputs) {
  DataflowGraph graph(memo_);
  NodeId in = graph.AddInput();
  NodeId op = graph.AddNode(Add(), {in});
  ASSERT_TRUE(graph.Start(1).ok());
  EXPECT_EQ(graph.Feed(op, MakeInt32(1)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataflowTest, SharedOperandFeedsManyConsumers) {
  // One cell read by three downstream nodes: copies, not consumption.
  DataflowGraph graph(memo_);
  NodeId in = graph.AddInput();
  NodeId n1 = graph.AddNode(Add(), {in});
  NodeId n2 = graph.AddNode(Mul(), {in, in});
  NodeId n3 = graph.AddNode(Add(), {in, in, in});
  ASSERT_TRUE(graph.Start(3).ok());
  ASSERT_TRUE(graph.Feed(in, MakeInt32(5)).ok());
  EXPECT_EQ(IntOf(*graph.Await(n1)), 5);
  EXPECT_EQ(IntOf(*graph.Await(n2)), 25);
  EXPECT_EQ(IntOf(*graph.Await(n3)), 15);
}

// ---- actors -----------------------------------------------------------------

class ActorsTest : public ::testing::Test {
 protected:
  LocalSpacePtr space_ = std::make_shared<LocalSpace>("actors");
  Memo memo_ = Memo::Local(space_);
};

TEST_F(ActorsTest, PatternDispatchByMessageType) {
  ActorSystem system(memo_, 2);
  std::atomic<int> pings{0}, pongs{0}, other{0};
  Behavior behavior;
  behavior.handlers["ping"] = [&](ActorContext&, const TransferablePtr&) {
    pings.fetch_add(1);
  };
  behavior.handlers["pong"] = [&](ActorContext&, const TransferablePtr&) {
    pongs.fetch_add(1);
  };
  behavior.otherwise = [&](ActorContext&, const TransferablePtr&) {
    other.fetch_add(1);
  };
  ASSERT_TRUE(system.Spawn("echo", std::move(behavior)).ok());
  ASSERT_TRUE(system.Start().ok());
  ASSERT_TRUE(system.Send("echo", "ping", nullptr).ok());
  ASSERT_TRUE(system.Send("echo", "ping", nullptr).ok());
  ASSERT_TRUE(system.Send("echo", "pong", nullptr).ok());
  ASSERT_TRUE(system.Send("echo", "mystery", nullptr).ok());
  ASSERT_TRUE(system.Drain().ok());
  EXPECT_EQ(pings.load(), 2);
  EXPECT_EQ(pongs.load(), 1);
  EXPECT_EQ(other.load(), 1);
  system.Shutdown();
}

TEST_F(ActorsTest, ActorsSendToEachOther) {
  // counter <- inc * 10 from a forwarding actor; then a probe reads it.
  ActorSystem system(memo_, 2);
  std::atomic<int> count{0};
  Behavior counter;
  counter.handlers["inc"] = [&](ActorContext&, const TransferablePtr&) {
    count.fetch_add(1);
  };
  Behavior forwarder;
  forwarder.handlers["fan"] = [&](ActorContext& ctx,
                                  const TransferablePtr& payload) {
    const int n = IntOf(payload);
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(ctx.Send("counter", "inc", nullptr).ok());
    }
  };
  ASSERT_TRUE(system.Spawn("counter", std::move(counter)).ok());
  ASSERT_TRUE(system.Spawn("fanout", std::move(forwarder)).ok());
  ASSERT_TRUE(system.Start().ok());
  ASSERT_TRUE(system.Send("fanout", "fan", MakeInt32(10)).ok());
  ASSERT_TRUE(system.Drain().ok());
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(system.messages_handled(), 11u);
  system.Shutdown();
}

TEST_F(ActorsTest, PingPongConversation) {
  ActorSystem system(memo_, 2);
  std::atomic<int> rallies{0};
  Behavior ping;
  ping.handlers["ball"] = [&](ActorContext& ctx,
                              const TransferablePtr& payload) {
    const int n = IntOf(payload);
    if (n > 0) {
      ASSERT_TRUE(ctx.Send("pong", "ball", MakeInt32(n - 1)).ok());
    }
  };
  Behavior pong;
  pong.handlers["ball"] = [&](ActorContext& ctx,
                              const TransferablePtr& payload) {
    rallies.fetch_add(1);
    const int n = IntOf(payload);
    if (n > 0) {
      ASSERT_TRUE(ctx.Send("ping", "ball", MakeInt32(n - 1)).ok());
    }
  };
  ASSERT_TRUE(system.Spawn("ping", std::move(ping)).ok());
  ASSERT_TRUE(system.Spawn("pong", std::move(pong)).ok());
  ASSERT_TRUE(system.Start().ok());
  ASSERT_TRUE(system.Send("ping", "ball", MakeInt32(10)).ok());
  ASSERT_TRUE(system.Drain().ok());
  EXPECT_EQ(rallies.load(), 5);
  system.Shutdown();
}

TEST_F(ActorsTest, SpawnAfterStartRejected) {
  ActorSystem system(memo_, 1);
  ASSERT_TRUE(system.Spawn("a", Behavior{}).ok());
  ASSERT_TRUE(system.Start().ok());
  EXPECT_EQ(system.Spawn("late", Behavior{}).code(),
            StatusCode::kFailedPrecondition);
  system.Shutdown();
}

TEST_F(ActorsTest, DuplicateActorRejected) {
  ActorSystem system(memo_, 1);
  ASSERT_TRUE(system.Spawn("a", Behavior{}).ok());
  EXPECT_EQ(system.Spawn("a", Behavior{}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ActorsTest, PatternGuardsDispatchBeforeTypeHandlers) {
  // MDC pattern dispatch: a guarded rule for priority=1 orders fires before
  // the generic "order" handler; non-matching payloads fall through.
  ActorSystem system(memo_, 1);
  std::atomic<int> urgent{0}, normal{0};
  Behavior clerk;
  MessagePattern urgent_order;
  urgent_order.type = "order";
  urgent_order.fields.push_back(FieldMatch{"priority", MakeInt32(1)});
  clerk.patterns.emplace_back(
      urgent_order,
      [&](ActorContext&, const TransferablePtr&) { urgent.fetch_add(1); });
  clerk.handlers["order"] = [&](ActorContext&, const TransferablePtr&) {
    normal.fetch_add(1);
  };
  ASSERT_TRUE(system.Spawn("clerk", std::move(clerk)).ok());
  ASSERT_TRUE(system.Start().ok());

  auto order = [&](int priority) {
    auto rec = std::make_shared<TRecord>();
    rec->Set("priority", MakeInt32(priority));
    rec->Set("sku", MakeString("widget"));
    ASSERT_TRUE(system.Send("clerk", "order", rec).ok());
  };
  order(1);
  order(2);
  order(1);
  order(3);
  ASSERT_TRUE(system.Drain().ok());
  EXPECT_EQ(urgent.load(), 2);
  EXPECT_EQ(normal.load(), 2);
  system.Shutdown();
}

TEST_F(ActorsTest, PatternRequiresRecordPayload) {
  MessagePattern pattern;
  pattern.type = "t";
  pattern.fields.push_back(FieldMatch{"k", MakeInt32(1)});
  EXPECT_FALSE(PatternMatches(pattern, "t", MakeInt32(1)));  // not a record
  EXPECT_FALSE(PatternMatches(pattern, "t", nullptr));
  EXPECT_FALSE(PatternMatches(pattern, "other", nullptr));

  auto rec = std::make_shared<TRecord>();
  rec->Set("k", MakeInt32(1));
  EXPECT_TRUE(PatternMatches(pattern, "t", rec));
  rec->Set("k", MakeInt32(2));
  EXPECT_FALSE(PatternMatches(pattern, "t", rec));

  MessagePattern type_only;
  type_only.type = "t";
  EXPECT_TRUE(PatternMatches(type_only, "t", nullptr));  // no field guards
}

TEST_F(ActorsTest, ManyMessagesAcrossDispatchers) {
  ActorSystem system(memo_, 4);
  std::atomic<int> handled{0};
  Behavior b;
  b.handlers["work"] = [&](ActorContext&, const TransferablePtr&) {
    handled.fetch_add(1);
  };
  ASSERT_TRUE(system.Spawn("sink", std::move(b)).ok());
  ASSERT_TRUE(system.Start().ok());
  constexpr int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(system.Send("sink", "work", MakeInt32(i)).ok());
  }
  ASSERT_TRUE(system.Drain().ok());
  EXPECT_EQ(handled.load(), kMessages);
  system.Shutdown();
}

}  // namespace
}  // namespace dmemo
