// Tests for the Memo API (Sec. 6): the seven primitives over both engines,
// the Sec. 6.2 data-structure idioms spelled exactly as the paper writes
// them, and domain checking on remote delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/memo.h"
#include "core/remote_engine.h"
#include "server/memo_server.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

// ---- local engine ---------------------------------------------------------

class LocalMemoTest : public ::testing::Test {
 protected:
  LocalSpacePtr space_ = std::make_shared<LocalSpace>("test");
  Memo memo_ = Memo::Local(space_);
};

TEST_F(LocalMemoTest, PutGetRoundTrip) {
  Key key(memo_.create_symbol());
  ASSERT_TRUE(memo_.put(key, MakeInt32(7)).ok());
  auto v = memo_.get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 7);
}

TEST_F(LocalMemoTest, CreateSymbolIsUnique) {
  std::set<Symbol> symbols;
  for (int i = 0; i < 10'000; ++i) symbols.insert(memo_.create_symbol());
  EXPECT_EQ(symbols.size(), 10'000u);
}

TEST_F(LocalMemoTest, NamedSymbolsAgree) {
  Memo other = Memo::Local(space_);
  EXPECT_EQ(memo_.symbol("jar"), other.symbol("jar"));
  EXPECT_NE(memo_.symbol("jar"), memo_.symbol("jam"));
}

TEST_F(LocalMemoTest, TwoHandlesShareTheSpace) {
  Memo producer = Memo::Local(space_);
  Memo consumer = Memo::Local(space_);
  Key key = Key::Named("shared");
  ASSERT_TRUE(producer.put(key, MakeString("hi")).ok());
  auto v = consumer.get(key);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::static_pointer_cast<TString>(*v)->value(), "hi");
}

TEST_F(LocalMemoTest, GetSkipPolling) {
  Key key = Key::Named("poll");
  auto nil = memo_.get_skip(key);
  ASSERT_TRUE(nil.ok());
  EXPECT_FALSE(nil->has_value());
  ASSERT_TRUE(memo_.put(key, MakeInt32(1)).ok());
  auto v = memo_.get_skip(key);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(IntOf(**v), 1);
}

// Sec. 6.2.2: "The element a[i,j] can be stored in a folder whose name is
// constructed as key.S = a; key.X[0] = i; key.X[1] = j; key.X[2] = 0;"
TEST_F(LocalMemoTest, ArrayIdiomFromThePaper) {
  Symbol a = memo_.create_symbol();
  auto element_key = [&](std::uint32_t i, std::uint32_t j) {
    Key key;
    key.S = a;
    key.X = {i, j, 0};
    return key;
  };
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      ASSERT_TRUE(memo_
                      .put(element_key(i, j),
                           MakeInt32(static_cast<int>(10 * i + j)))
                      .ok());
    }
  }
  auto v = memo_.get(element_key(2, 1));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 21);
}

// Sec. 6.3.1: shared records are implicitly locked while extracted.
TEST_F(LocalMemoTest, SharedRecordImplicitLock) {
  Key obj = Key::Named("record");
  ASSERT_TRUE(memo_.put(obj, MakeInt32(0)).ok());
  constexpr int kThreads = 4, kIncrements = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Memo m = Memo::Local(space_);
      for (int i = 0; i < kIncrements; ++i) {
        auto v = m.get(obj);  // record locked: folder now empty
        ASSERT_TRUE(v.ok());
        ASSERT_TRUE(m.put(obj, MakeInt32(IntOf(*v) + 1)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto final = memo_.get(obj);
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(IntOf(*final), kThreads * kIncrements);
}

// Sec. 6.3.2: a counting semaphore is a folder pre-loaded with N memos.
TEST_F(LocalMemoTest, SemaphoreIdiom) {
  Key sem = Key::Named("sem");
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(memo_.put(sem, MakeInt32(1)).ok());
  }
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      Memo m = Memo::Local(space_);
      auto token = m.get(sem);  // P
      ASSERT_TRUE(token.ok());
      int cur = inside.fetch_add(1) + 1;
      int expect = peak.load();
      while (cur > expect && !peak.compare_exchange_weak(expect, cur)) {
      }
      std::this_thread::sleep_for(5ms);
      inside.fetch_sub(1);
      ASSERT_TRUE(m.put(sem, std::move(*token)).ok());  // V
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
}

// Sec. 6.2.5 + 6.3.3: futures and dataflow triggering with put_delayed.
TEST_F(LocalMemoTest, FutureAndDataflowTrigger) {
  Key future = Key::Named("future");
  Key job_jar = Key::Named("job_jar");
  // Park an operation: when the future is written, the operation drops
  // into the job jar.
  ASSERT_TRUE(
      memo_.put_delayed(future, job_jar, MakeString("operation")).ok());
  EXPECT_EQ(*memo_.count(job_jar), 0u);
  // Producer assigns the future.
  ASSERT_TRUE(memo_.put(future, MakeInt32(99)).ok());
  // The operation is now in the jar, and the future value is readable.
  auto op = memo_.get(job_jar);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(std::static_pointer_cast<TString>(*op)->value(), "operation");
  auto value = memo_.get(future);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(IntOf(*value), 99);
  // The future's folder vanished once the memo was removed.
  EXPECT_EQ(*memo_.count(future), 0u);
}

TEST_F(LocalMemoTest, JobJarWithLocalAndCommonJars) {
  // Sec. 6.2.4: get_alt over the private jar and the common jar.
  Key my_jar = Key::Named("jar", {1});
  Key common_jar = Key::Named("jar", {0});
  ASSERT_TRUE(memo_.put(common_jar, MakeString("common-task")).ok());
  std::vector<Key> jars{my_jar, common_jar};
  auto task = memo_.get_alt(jars);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->first, common_jar);

  auto empty = memo_.get_alt_skip(jars);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST_F(LocalMemoTest, GetCopyDoesNotConsume) {
  Key key = Key::Named("examined");
  ASSERT_TRUE(memo_.put(key, MakeVecFloat64({1.0, 2.0})).ok());
  auto c1 = memo_.get_copy(key);
  auto c2 = memo_.get_copy(key);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*memo_.count(key), 1u);
}

TEST_F(LocalMemoTest, CloseCancelsBlockedGet) {
  std::thread blocked([&] {
    Memo m = Memo::Local(space_);
    auto v = m.get(Key::Named("never"));
    EXPECT_EQ(v.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(30ms);
  space_->Close();
  blocked.join();
}

// ---- remote engine over a simulated two-machine network ---------------------

constexpr const char* kAdf =
    "APP rt\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
    "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n";

class RemoteMemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_shared<SimNetwork>();
    transport_ = MakeSimTransport(network_);
    auto parsed = ParseAdf(kAdf);
    ASSERT_TRUE(parsed.ok());
    adf_ = parsed->description;
    std::unordered_map<std::string, std::string> peers{
        {"hostA", "sim://hostA"}, {"hostB", "sim://hostB"}};
    for (const auto& host : adf_.hosts) {
      MemoServerOptions opts;
      opts.host = host.name;
      opts.listen_url = peers[host.name];
      opts.peers = peers;
      auto server = MemoServer::Start(transport_, opts);
      ASSERT_TRUE(server.ok()) << server.status();
      ASSERT_TRUE((*server)->RegisterApp(adf_).ok());
      servers_.push_back(std::move(*server));
    }
  }

  void TearDown() override {
    for (auto& s : servers_) s->Shutdown();
  }

  Memo Client(const std::string& host,
              MachineProfile profile = MachineProfile::Universal(),
              bool strict = true) {
    RemoteEngineOptions opts;
    opts.app = "rt";
    opts.host = host;
    opts.profile = profile;
    opts.strict_domains = strict;
    auto engine = MakeRemoteEngine(transport_, "sim://" + host, opts);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return Memo(std::move(*engine));
  }

  SimNetworkPtr network_;
  TransportPtr transport_;
  AppDescription adf_;
  std::vector<std::unique_ptr<MemoServer>> servers_;
};

TEST_F(RemoteMemoTest, CrossMachinePutGet) {
  Memo producer = Client("hostA");
  Memo consumer = Client("hostB");
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(producer
                    .put(Key::Named("data", {i}),
                         MakeInt32(static_cast<int>(i)))
                    .ok());
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto v = consumer.get(Key::Named("data", {i}));
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(IntOf(*v), static_cast<int>(i));
  }
}

TEST_F(RemoteMemoTest, BlockingGetAcrossClients) {
  Memo producer = Client("hostA");
  Memo consumer = Client("hostB");
  Key key = Key::Named("handoff");
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto v = consumer.get(key);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(IntOf(*v), 123);
    got = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(producer.put(key, MakeInt32(123)).ok());
  waiter.join();
}

TEST_F(RemoteMemoTest, StructuredGraphSurvivesTheWire) {
  Memo producer = Client("hostA");
  Memo consumer = Client("hostB");
  auto rec = std::make_shared<TRecord>();
  rec->Set("name", MakeString("task"));
  rec->Set("self", rec);  // cycle crosses the wire intact
  ASSERT_TRUE(producer.put(Key::Named("graph"), rec).ok());
  auto v = consumer.get(Key::Named("graph"));
  ASSERT_TRUE(v.ok());
  auto got = std::static_pointer_cast<TRecord>(*v);
  EXPECT_EQ(got->Get("self").get(), got.get());
  ReleaseGraph(got);
  ReleaseGraph(rec);
}

TEST_F(RemoteMemoTest, LossyDeliveryRejectedOnNarrowMachine) {
  // The paper's Alpha -> 80486 example, end to end: a 64-bit value wider
  // than 16 bits is deposited by one machine and must be refused delivery
  // on a 16-bit-profile machine.
  Memo alpha = Client("hostA", ProfileAlpha());
  Memo i486 = Client("hostB", ProfileI486());
  Key key = Key::Named("wide");
  ASSERT_TRUE(alpha.put(key, MakeInt64(100'000)).ok());
  auto v = i486.get(key);
  EXPECT_EQ(v.status().code(), StatusCode::kDataLoss);

  // A small value in the same domain is delivered fine.
  ASSERT_TRUE(alpha.put(key, MakeInt64(999)).ok());
  auto ok = i486.get(key);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(RemoteMemoTest, NonStrictModeDeliversLossyValues) {
  Memo alpha = Client("hostA", ProfileAlpha());
  Memo lenient = Client("hostB", ProfileI486(), /*strict=*/false);
  Key key = Key::Named("wide2");
  ASSERT_TRUE(alpha.put(key, MakeInt64(100'000)).ok());
  auto v = lenient.get(key);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(std::static_pointer_cast<TInt64>(*v)->value(), 100'000);
}

TEST_F(RemoteMemoTest, PutDelayedWorksRemotely) {
  Memo memo = Client("hostA");
  Key future = Key::Named("rfuture");
  Key jar = Key::Named("rjar");
  ASSERT_TRUE(memo.put_delayed(future, jar, MakeString("op")).ok());
  EXPECT_EQ(*memo.count(jar), 0u);
  ASSERT_TRUE(memo.put(future, MakeInt32(1)).ok());
  auto op = memo.get(jar);
  ASSERT_TRUE(op.ok()) << op.status();
  EXPECT_EQ(std::static_pointer_cast<TString>(*op)->value(), "op");
}

TEST_F(RemoteMemoTest, GetAltRemoteAcrossFolders) {
  Memo memo = Client("hostA");
  std::vector<Key> keys{Key::Named("ra"), Key::Named("rb")};
  ASSERT_TRUE(memo.put(keys[1], MakeInt32(5)).ok());
  auto hit = memo.get_alt(keys);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_EQ(hit->first, keys[1]);
  EXPECT_EQ(IntOf(hit->second), 5);
}

}  // namespace
}  // namespace dmemo
