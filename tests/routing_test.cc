// Tests for the routing table (Sec. 5): Dijkstra paths over ADF topologies
// and the cost-weighted rendezvous hashing of folder names to servers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "folder/key.h"
#include "routing/routing.h"

namespace dmemo {
namespace {

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

Bytes KeyBytes(const std::string& app, const std::string& name,
               std::uint32_t index = 0) {
  QualifiedKey qk{app, Key::Named(name, {index})};
  return qk.ToBytes();
}

// ---- path computations -------------------------------------------------------

TEST(RoutingPathTest, LineTopologyCostsAndHops) {
  // a -- b -- c with unit links: classic relay chain.
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
      "FOLDERS\n0 a\nPPC\na <-> b 1\nb <-> c 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok()) << table.status();

  EXPECT_DOUBLE_EQ(*table->PathCost("a", "c"), 2.0);
  EXPECT_DOUBLE_EQ(*table->PathCost("a", "a"), 0.0);
  EXPECT_EQ(*table->Path("a", "c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(*table->NextHop("a", "c"), "b");
  EXPECT_EQ(*table->NextHop("b", "c"), "c");
  EXPECT_EQ(*table->NextHop("a", "a"), "a");
}

TEST(RoutingPathTest, CheapDetourBeatsExpensiveDirectLink) {
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
      "FOLDERS\n0 a\nPPC\na <-> c 10\na <-> b 1\nb <-> c 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*table->PathCost("a", "c"), 2.0);
  EXPECT_EQ(*table->NextHop("a", "c"), "b");
}

TEST(RoutingPathTest, SimplexLinkIsOneWay) {
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\n"
      "FOLDERS\n0 a\nPPC\na -> b 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*table->PathCost("a", "b"), 1.0);
  EXPECT_EQ(*table->PathCost("b", "a"), kUnreachable);
  EXPECT_EQ(table->NextHop("b", "a").status().code(),
            StatusCode::kUnavailable);
}

TEST(RoutingPathTest, StarTopologyRoutesThroughHub) {
  auto adf = Adf(
      "APP x\nHOSTS\nhub 1 t 1\ns1 1 t 1\ns2 1 t 1\ns3 1 t 1\n"
      "FOLDERS\n0 hub\n"
      "PPC\nhub <-> s1 1\nhub <-> s2 1\nhub <-> s3 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->Path("s1", "s3"),
            (std::vector<std::string>{"s1", "hub", "s3"}));
  EXPECT_DOUBLE_EQ(*table->PathCost("s1", "s2"), 2.0);
}

TEST(RoutingPathTest, RingTopologyTakesShortArc) {
  // 4-node ring; opposite corners are 2 hops either way, neighbours 1.
  auto adf = Adf(
      "APP x\nHOSTS\nn0 1 t 1\nn1 1 t 1\nn2 1 t 1\nn3 1 t 1\n"
      "FOLDERS\n0 n0\n"
      "PPC\nn0 <-> n1 1\nn1 <-> n2 1\nn2 <-> n3 1\nn3 <-> n0 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*table->PathCost("n0", "n1"), 1.0);
  EXPECT_DOUBLE_EQ(*table->PathCost("n0", "n2"), 2.0);
  EXPECT_EQ(table->Path("n0", "n2")->size(), 3u);
}

TEST(RoutingPathTest, UnknownHostIsNotFound) {
  auto adf = Adf("APP x\nHOSTS\na 1 t 1\nFOLDERS\n0 a\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->PathCost("a", "ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(RoutingPathTest, ParallelLinksKeepCheapest) {
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\n"
      "FOLDERS\n0 a\nPPC\na <-> b 5\na <-> b 2\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(*table->PathCost("a", "b"), 2.0);
}

TEST(RoutingBuildTest, InvalidAdfRejected) {
  AppDescription empty;
  EXPECT_FALSE(RoutingTable::Build(empty).ok());
}

// ---- folder-server selection ---------------------------------------------------

TEST(RoutingHashTest, DeterministicAcrossTables) {
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nFOLDERS\n0 a\n1 b\n"
      "PPC\na <-> b 1\n");
  auto t1 = RoutingTable::Build(adf);
  auto t2 = RoutingTable::Build(adf);
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (int i = 0; i < 200; ++i) {
    auto s1 = t1->ServerForKey(KeyBytes("x", "f", i));
    auto s2 = t2->ServerForKey(KeyBytes("x", "f", i));
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(s1->id, s2->id) << i;
  }
}

TEST(RoutingHashTest, AllServersUsed) {
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nFOLDERS\n0 a\n1 a\n2 b\n3 b\n"
      "PPC\na <-> b 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  std::map<int, int> hits;
  for (int i = 0; i < 2000; ++i) {
    hits[table->ServerForKey(KeyBytes("x", "f", i))->id]++;
  }
  EXPECT_EQ(hits.size(), 4u);
}

TEST(RoutingHashTest, EqualWeightsGiveEvenDistribution) {
  // "With out this control, an even distribution would be seen over the
  // folder servers."
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
      "FOLDERS\n0 a\n1 b\n2 c\n"
      "PPC\na <-> b 1\nb <-> c 1\nc <-> a 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  constexpr int kKeys = 30'000;
  std::map<int, int> hits;
  for (int i = 0; i < kKeys; ++i) {
    hits[table->ServerForKey(KeyBytes("x", "f", i))->id]++;
  }
  for (const auto& [id, n] : hits) {
    EXPECT_NEAR(n, kKeys / 3.0, kKeys * 0.02) << "server " << id;
  }
}

TEST(RoutingHashTest, DistributionTracksProcessorPower) {
  // Host b has 3 processors at the same cost: it should draw ~3x the memos.
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 3 t 1\n"
      "FOLDERS\n0 a\n1 b\nPPC\na <-> b 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  constexpr int kKeys = 40'000;
  int to_b = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (table->ServerForKey(KeyBytes("x", "f", i))->id == 1) ++to_b;
  }
  EXPECT_NEAR(static_cast<double>(to_b) / kKeys, 0.75, 0.02);
}

TEST(RoutingHashTest, CheaperProcessorsDrawMoreMemos) {
  // Same processor counts; b is half the cost per processor => double power.
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 0.5\n"
      "FOLDERS\n0 a\n1 b\nPPC\na <-> b 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  constexpr int kKeys = 40'000;
  int to_b = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (table->ServerForKey(KeyBytes("x", "f", i))->id == 1) ++to_b;
  }
  EXPECT_NEAR(static_cast<double>(to_b) / kKeys, 2.0 / 3.0, 0.02);
}

TEST(RoutingHashTest, ExpensiveLinkDiscountsServer) {
  // Identical hosts, but c sits behind a cost-9 link: it must receive
  // measurably fewer memos than b behind a cost-1 link.
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nc 1 t 1\n"
      "FOLDERS\n0 b\n1 c\n"
      "PPC\na <-> b 1\na <-> c 9\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  constexpr int kKeys = 40'000;
  int to_c = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (table->ServerForKey(KeyBytes("x", "f", i))->id == 1) ++to_c;
  }
  EXPECT_LT(static_cast<double>(to_c) / kKeys, 0.40);
}

TEST(RoutingHashTest, ServersOnOneHostSplitItsShare) {
  // Host b holds two folder servers; together they should still draw only
  // b's share (~1/2), not 2/3.
  auto adf = Adf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\n"
      "FOLDERS\n0 a\n1 b\n2 b\nPPC\na <-> b 1\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  constexpr int kKeys = 40'000;
  int to_b = 0;
  for (int i = 0; i < kKeys; ++i) {
    int id = table->ServerForKey(KeyBytes("x", "f", i))->id;
    if (id == 1 || id == 2) ++to_b;
  }
  EXPECT_NEAR(static_cast<double>(to_b) / kKeys, 0.5, 0.02);
}

TEST(RoutingHashTest, WeightsAreNormalized) {
  auto adf = Adf(
      "APP x\nHOSTS\na 2 t 1\nb 1 t 0.25\n"
      "FOLDERS\n0 a\n1 b\n2 b\nPPC\na <-> b 2\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  double sum = 0;
  for (double w : table->server_weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RoutingHashTest, PaperInvertExampleFavoursTheSp1) {
  // 128 processors at half cost vs three 1-processor sparcs: virtually all
  // folder traffic should land on bonnie's six servers.
  auto adf = Adf(
      "APP invert\nHOSTS\n"
      "glen 1 sun4 1\naurora 1 sun4 1\njoliet 1 sun4 1\n"
      "bonnie 128 sp1 sun4*0.5\n"
      "FOLDERS\n0 glen\n1 aurora\n2 joliet\n3-8 bonnie\n"
      "PPC\nglen <-> aurora 1\nglen <-> joliet 1\nglen <-> bonnie 2\n");
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok()) << table.status();
  int to_bonnie = 0;
  constexpr int kKeys = 20'000;
  for (int i = 0; i < kKeys; ++i) {
    if (table->ServerForKey(KeyBytes("invert", "work", i))->id >= 3) {
      ++to_bonnie;
    }
  }
  EXPECT_GT(static_cast<double>(to_bonnie) / kKeys, 0.9);
}

}  // namespace
}  // namespace dmemo
