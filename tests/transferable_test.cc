// Tests for the Transferable foundation: scalar domains, composites, the
// graph codec (sharing + cycles), the type registry, and machine-profile
// lossy-mapping detection (paper Sec. 3.1.3).
#include <gtest/gtest.h>

#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/machine_profile.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

TransferablePtr RoundTrip(const TransferablePtr& value) {
  Bytes encoded = EncodeGraphToBytes(value);
  auto decoded = DecodeGraphFromBytes(encoded);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.ok() ? *decoded : nullptr;
}

// ---- scalars ---------------------------------------------------------------

TEST(ScalarTest, Int16RoundTrip) {
  auto v = RoundTrip(MakeInt16(-1234));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->domain(), Domain::kInt16);
  EXPECT_EQ(std::static_pointer_cast<TInt16>(v)->value(), -1234);
}

TEST(ScalarTest, AllIntDomainsRoundTripExtremes) {
  EXPECT_EQ(std::static_pointer_cast<TInt8>(
                RoundTrip(std::make_shared<TInt8>(-128)))->value(),
            -128);
  EXPECT_EQ(std::static_pointer_cast<TInt64>(
                RoundTrip(MakeInt64(INT64_MIN)))->value(),
            INT64_MIN);
  EXPECT_EQ(std::static_pointer_cast<TUInt64>(
                RoundTrip(MakeUInt64(~0ULL)))->value(),
            ~0ULL);
  EXPECT_EQ(std::static_pointer_cast<TUInt16>(
                RoundTrip(std::make_shared<TUInt16>(65535)))->value(),
            65535);
}

TEST(ScalarTest, FloatsRoundTripExactly) {
  EXPECT_EQ(std::static_pointer_cast<TFloat32>(
                RoundTrip(MakeFloat32(1.5f)))->value(),
            1.5f);
  EXPECT_EQ(std::static_pointer_cast<TFloat64>(
                RoundTrip(MakeFloat64(-0.1)))->value(),
            -0.1);
}

TEST(ScalarTest, BoolAndStringAndBytes) {
  EXPECT_TRUE(std::static_pointer_cast<TBool>(RoundTrip(MakeBool(true)))
                  ->value());
  EXPECT_EQ(std::static_pointer_cast<TString>(
                RoundTrip(MakeString("memo space")))->value(),
            "memo space");
  EXPECT_EQ(std::static_pointer_cast<TBytes>(
                RoundTrip(MakeBytes(Bytes{9, 8, 7})))->value(),
            (Bytes{9, 8, 7}));
}

TEST(ScalarTest, DomainMetadata) {
  EXPECT_EQ(IntDomainBits(Domain::kInt16), 16);
  EXPECT_EQ(IntDomainBits(Domain::kUInt64), 64);
  EXPECT_EQ(IntDomainBits(Domain::kFloat32), 0);
  EXPECT_TRUE(IsSignedIntDomain(Domain::kInt8));
  EXPECT_TRUE(IsUnsignedIntDomain(Domain::kUInt32));
  EXPECT_FALSE(IsIntDomain(Domain::kString));
  EXPECT_TRUE(IsFloatDomain(Domain::kFloat64));
  EXPECT_EQ(DomainName(Domain::kInt16), "int16");
}

// ---- composites ------------------------------------------------------------

TEST(CompositeTest, NestedListRoundTrip) {
  auto inner = std::make_shared<TList>();
  inner->Add(MakeInt32(1));
  inner->Add(MakeString("two"));
  auto outer = std::make_shared<TList>();
  outer->Add(inner);
  outer->Add(nullptr);  // null child survives
  outer->Add(MakeFloat64(3.0));

  auto v = std::static_pointer_cast<TList>(RoundTrip(outer));
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->size(), 3u);
  auto in = std::static_pointer_cast<TList>(v->items()[0]);
  EXPECT_EQ(std::static_pointer_cast<TInt32>(in->items()[0])->value(), 1);
  EXPECT_EQ(std::static_pointer_cast<TString>(in->items()[1])->value(),
            "two");
  EXPECT_EQ(v->items()[1], nullptr);
}

TEST(CompositeTest, RecordFieldsPreserveOrderAndLookup) {
  auto rec = std::make_shared<TRecord>();
  rec->Set("task", MakeString("invert"));
  rec->Set("row", MakeInt32(7));
  rec->Set("task", MakeString("invert2"));  // overwrite, not duplicate

  auto v = std::static_pointer_cast<TRecord>(RoundTrip(rec));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->size(), 2u);
  EXPECT_EQ(v->fields()[0].name, "task");
  EXPECT_EQ(std::static_pointer_cast<TString>(v->Get("task"))->value(),
            "invert2");
  EXPECT_EQ(std::static_pointer_cast<TInt32>(v->Get("row"))->value(), 7);
  EXPECT_EQ(v->Get("absent"), nullptr);
  EXPECT_TRUE(v->Has("row"));
  EXPECT_FALSE(v->Has("absent"));
}

TEST(CompositeTest, TypedVectorsRoundTrip) {
  std::vector<double> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 0.5;
  auto v = std::static_pointer_cast<TVecFloat64>(
      RoundTrip(MakeVecFloat64(data)));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->values(), data);

  auto iv = std::static_pointer_cast<TVecInt32>(
      RoundTrip(MakeVecInt32({-1, 0, 1 << 30})));
  EXPECT_EQ(iv->values(), (std::vector<std::int32_t>{-1, 0, 1 << 30}));
}

// ---- graph codec: sharing and cycles ----------------------------------------

TEST(CodecTest, SharedChildEncodedOnce) {
  auto shared = MakeString("shared-node");
  auto list = std::make_shared<TList>();
  list->Add(shared);
  list->Add(shared);

  auto v = std::static_pointer_cast<TList>(RoundTrip(list));
  ASSERT_EQ(v->size(), 2u);
  // Identity, not just equality: the decoder rebuilt one node.
  EXPECT_EQ(v->items()[0].get(), v->items()[1].get());

  // And the encoding really is smaller than two copies.
  auto two_copies = std::make_shared<TList>();
  two_copies->Add(MakeString("shared-node"));
  two_copies->Add(MakeString("shared-node"));
  EXPECT_LT(EncodeGraphToBytes(list).size(),
            EncodeGraphToBytes(two_copies).size());
}

TEST(CodecTest, SelfReferentialRecordRoundTrips) {
  auto rec = std::make_shared<TRecord>();
  rec->Set("name", MakeString("looper"));
  rec->Set("self", rec);  // a cycle

  auto v = std::static_pointer_cast<TRecord>(RoundTrip(rec));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->Get("self").get(), v.get());
  EXPECT_EQ(std::static_pointer_cast<TString>(v->Get("name"))->value(),
            "looper");

  ReleaseGraph(v);
  ReleaseGraph(rec);
}

TEST(CodecTest, MutualCycleRoundTrips) {
  auto a = std::make_shared<TRecord>();
  auto b = std::make_shared<TRecord>();
  a->Set("peer", b);
  a->Set("tag", MakeInt32(1));
  b->Set("peer", a);
  b->Set("tag", MakeInt32(2));

  auto va = std::static_pointer_cast<TRecord>(RoundTrip(a));
  auto vb = std::static_pointer_cast<TRecord>(va->Get("peer"));
  EXPECT_EQ(vb->Get("peer").get(), va.get());
  EXPECT_EQ(std::static_pointer_cast<TInt32>(vb->Get("tag"))->value(), 2);

  ReleaseGraph(va);
  ReleaseGraph(a);
}

TEST(CodecTest, GraphNodeCountCountsSharedOnce) {
  auto shared = MakeInt32(5);
  auto list = std::make_shared<TList>();
  list->Add(shared);
  list->Add(shared);
  list->Add(MakeInt32(6));
  EXPECT_EQ(GraphNodeCount(list), 3u);  // list + shared + 6
}

TEST(CodecTest, DeepChainSurvives) {
  // A deep list chain: graph traversal (GraphNodeCount, ReleaseGraph) is
  // iterative and unbounded; the codec itself recurses per nesting level
  // (as serializers do), so the chain stays within the documented depth.
  constexpr int kDepth = 4000;
  TransferablePtr head = MakeInt32(0);
  for (int i = 0; i < kDepth; ++i) {
    auto node = std::make_shared<TList>();
    node->Add(std::move(head));
    head = node;
  }
  auto v = RoundTrip(head);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(GraphNodeCount(v), kDepth + 1u);
  ReleaseGraph(v);
  ReleaseGraph(head);
}

TEST(CodecTest, NullRootRoundTrips) {
  Bytes encoded = EncodeGraphToBytes(nullptr);
  auto decoded = DecodeGraphFromBytes(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, nullptr);
}

TEST(CodecTest, CloneIsDeepAndPreservesSharing) {
  auto shared = MakeString("x");
  auto list = std::make_shared<TList>();
  list->Add(shared);
  list->Add(shared);
  auto clone = CloneTransferable(*list);
  ASSERT_TRUE(clone.ok());
  auto cl = std::static_pointer_cast<TList>(*clone);
  EXPECT_NE(cl.get(), list.get());
  EXPECT_NE(cl->items()[0].get(), shared.get());       // deep
  EXPECT_EQ(cl->items()[0].get(), cl->items()[1].get());  // sharing kept
}

TEST(CodecTest, TransferableEquals) {
  auto a = MakeVecInt32({1, 2, 3});
  auto b = MakeVecInt32({1, 2, 3});
  auto c = MakeVecInt32({1, 2, 4});
  EXPECT_TRUE(TransferableEquals(*a, *b));
  EXPECT_FALSE(TransferableEquals(*a, *c));
  EXPECT_FALSE(TransferableEquals(*a, *MakeInt32(1)));
}

TEST(CodecTest, TruncatedPayloadIsDataLoss) {
  Bytes encoded = EncodeGraphToBytes(MakeString("truncate me please"));
  encoded.resize(encoded.size() / 2);
  auto decoded = DecodeGraphFromBytes(encoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CodecTest, UnknownTypeIdIsNotFound) {
  ByteWriter w;
  w.u8(1);          // inline tag
  w.varint(99999);  // unregistered type id
  auto decoded = DecodeGraphFromBytes(w.data());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

TEST(CodecTest, BogusBackRefIsDataLoss) {
  ByteWriter w;
  w.u8(2);       // backref tag
  w.varint(17);  // no node 17 exists
  auto decoded = DecodeGraphFromBytes(w.data());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// ---- registry ---------------------------------------------------------------

class UserPoint final : public Transferable {
 public:
  static constexpr TypeId kTypeId = kFirstUserTypeId + 7;
  TypeId type_id() const override { return kTypeId; }
  Domain domain() const override { return Domain::kComposite; }
  void EncodePayload(Encoder& enc) const override {
    enc.I32(x);
    enc.I32(y);
  }
  Status DecodePayload(Decoder& dec) override {
    DMEMO_ASSIGN_OR_RETURN(x, dec.I32());
    DMEMO_ASSIGN_OR_RETURN(y, dec.I32());
    return Status::Ok();
  }
  std::int32_t x = 0, y = 0;
};

TEST(RegistryTest, UserTypeRoundTripsAfterRegistration) {
  static const Status reg = RegisterTransferable<UserPoint>();
  ASSERT_TRUE(reg.ok()) << reg;
  auto p = std::make_shared<UserPoint>();
  p->x = 3;
  p->y = -4;
  auto v = std::static_pointer_cast<UserPoint>(RoundTrip(p));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->x, 3);
  EXPECT_EQ(v->y, -4);
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  EXPECT_EQ(TypeRegistry::Global()
                .Register(TInt32::kTypeId, [] { return MakeInt32(0); })
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, ContainsBuiltins) {
  EXPECT_TRUE(TypeRegistry::Global().Contains(TString::kTypeId));
  EXPECT_FALSE(TypeRegistry::Global().Contains(60));  // reserved, unused
}

// ---- machine profiles: the paper's lossy-mapping example --------------------

TEST(ProfileTest, PaperExampleAlphaToI486) {
  // "A lossy mapping occurs when an Alpha processor (64-bit) sends an
  // integer to an Intel 80486 (16-bit) and the value is greater than
  // 16-bits."
  auto big = MakeInt64(100'000);  // needs > 16 bits
  EXPECT_EQ(CheckRepresentable(*big, ProfileI486()).code(),
            StatusCode::kDataLoss);
  // Same domain, small value: the problem is precision, not the type.
  auto small = MakeInt64(1'000);
  EXPECT_TRUE(CheckRepresentable(*small, ProfileI486()).ok());
  // And the alpha itself takes anything.
  EXPECT_TRUE(CheckRepresentable(*big, ProfileAlpha()).ok());
}

TEST(ProfileTest, SignedRangeEdges) {
  EXPECT_TRUE(CheckRepresentable(*MakeInt64(32767), ProfileI486()).ok());
  EXPECT_FALSE(CheckRepresentable(*MakeInt64(32768), ProfileI486()).ok());
  EXPECT_TRUE(CheckRepresentable(*MakeInt64(-32768), ProfileI486()).ok());
  EXPECT_FALSE(CheckRepresentable(*MakeInt64(-32769), ProfileI486()).ok());
}

TEST(ProfileTest, UnsignedRangeEdges) {
  EXPECT_TRUE(CheckRepresentable(*MakeUInt64(65535), ProfileI486()).ok());
  EXPECT_FALSE(CheckRepresentable(*MakeUInt64(65536), ProfileI486()).ok());
}

TEST(ProfileTest, Float64ToFloat32Precision) {
  // 0.5 is exact in float32; 0.1 is not.
  EXPECT_TRUE(CheckRepresentable(*MakeFloat64(0.5), ProfileI486()).ok());
  EXPECT_EQ(CheckRepresentable(*MakeFloat64(0.1), ProfileI486()).code(),
            StatusCode::kDataLoss);
  EXPECT_TRUE(CheckRepresentable(*MakeFloat64(0.1), ProfileSun4()).ok());
}

TEST(ProfileTest, CompositeGraphIsWalked) {
  auto rec = std::make_shared<TRecord>();
  rec->Set("ok", MakeInt32(1));
  auto nested = std::make_shared<TList>();
  nested->Add(MakeInt64(1'000'000));  // offender buried two levels deep
  rec->Set("nested", nested);
  auto lossy = FindLossyMappings(*rec, ProfileI486());
  ASSERT_EQ(lossy.size(), 1u);
  EXPECT_EQ(lossy[0].domain, Domain::kInt64);
}

TEST(ProfileTest, CyclicGraphTerminates) {
  auto rec = std::make_shared<TRecord>();
  rec->Set("self", rec);
  rec->Set("v", MakeInt64(1'000'000));
  EXPECT_EQ(FindLossyMappings(*rec, ProfileI486()).size(), 1u);
  ReleaseGraph(rec);
}

TEST(ProfileTest, TypedVectorsChecked) {
  auto ok = MakeVecInt32({1, 2, 3});
  auto bad = MakeVecInt32({1, 1 << 20, 3});
  EXPECT_TRUE(CheckRepresentable(*ok, ProfileI486()).ok());
  EXPECT_FALSE(CheckRepresentable(*bad, ProfileI486()).ok());
}

TEST(ProfileTest, UniversalProfileSkipsWork) {
  auto big = MakeInt64(INT64_MAX);
  EXPECT_TRUE(
      CheckRepresentable(*big, MachineProfile::Universal()).ok());
}

TEST(ProfileTest, ProfileForArchLookup) {
  EXPECT_EQ(ProfileForArch("i486").int_bits, 16);
  EXPECT_EQ(ProfileForArch("sun4").int_bits, 32);
  EXPECT_EQ(ProfileForArch("alpha").int_bits, 64);
  // Unknown arch imposes no restrictions.
  EXPECT_EQ(ProfileForArch("riscv").int_bits, 64);
  EXPECT_EQ(ProfileForArch("riscv").arch, "riscv");
}

}  // namespace
}  // namespace dmemo
