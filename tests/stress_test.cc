// Bounded stress / soak tests: sustained mixed traffic across engines and
// machines, with conservation checks at the end. Each test caps its own
// work so the suite stays in CI territory (a few seconds), but the
// interleavings are real: many clients, many folders, every primitive.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "locking/lock_order.h"
#include "patterns/patterns.h"
#include "runtime/cluster.h"
#include "transferable/scalars.h"
#include "util/rng.h"

namespace dmemo {
namespace {

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

TEST(StressTest, MixedPrimitivesLocalEngine) {
  // 6 threads × 2000 random operations over 16 folders on the local
  // engine; a final sweep checks the books balance.
  auto space = std::make_shared<LocalSpace>("soak");
  constexpr int kThreads = 6, kOps = 2000;
  std::atomic<long> puts{0}, takes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Memo memo = Memo::Local(space);
      SplitMix64 rng(static_cast<std::uint64_t>(t) * 7919 + 13);
      for (int i = 0; i < kOps; ++i) {
        Key key = Key::Named("soak",
                             {static_cast<std::uint32_t>(rng.NextBelow(16))});
        switch (rng.NextBelow(4)) {
          case 0:
          case 1: {
            ASSERT_TRUE(memo.put(key, MakeInt32(i)).ok());
            puts.fetch_add(1);
            break;
          }
          case 2: {
            auto v = memo.get_skip(key);
            ASSERT_TRUE(v.ok());
            if (v->has_value()) takes.fetch_add(1);
            break;
          }
          default: {
            auto c = memo.count(key);
            ASSERT_TRUE(c.ok());
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Conservation: remaining == puts - takes.
  Memo memo = Memo::Local(space);
  long remaining = 0;
  for (std::uint32_t f = 0; f < 16; ++f) {
    remaining += static_cast<long>(*memo.count(Key::Named("soak", {f})));
  }
  EXPECT_EQ(remaining, puts.load() - takes.load());
}

TEST(StressTest, CrossMachinePipelineSustainedLoad) {
  // Three machines, a three-stage pipeline (source -> square -> sink) with
  // every stage on its own client; 500 items flow end to end.
  auto cluster = Cluster::Start(Adf(
      "APP soak2\nHOSTS\nm0 1 t 1\nm1 1 t 1\nm2 1 t 1\n"
      "FOLDERS\n0 m0\n1 m1\n2 m2\n"
      "PPC\nm0 <-> m1 1\nm1 <-> m2 1\nm0 <-> m2 2\n"));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  constexpr int kItems = 500;

  std::thread source([&] {
    Memo memo = *cluster->get()->Client("m0", MachineProfile::Universal());
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(memo.put(Key::Named("stage1"), MakeInt32(i)).ok());
    }
  });
  std::thread squarer([&] {
    Memo memo = *cluster->get()->Client("m1", MachineProfile::Universal());
    for (int i = 0; i < kItems; ++i) {
      auto v = memo.get(Key::Named("stage1"));
      ASSERT_TRUE(v.ok());
      const int x = IntOf(*v);
      ASSERT_TRUE(memo.put(Key::Named("stage2"), MakeInt32(x * x)).ok());
    }
  });
  long long sum = 0;
  std::thread sink([&] {
    Memo memo = *cluster->get()->Client("m2", MachineProfile::Universal());
    for (int i = 0; i < kItems; ++i) {
      auto v = memo.get(Key::Named("stage2"));
      ASSERT_TRUE(v.ok());
      sum += IntOf(*v);
    }
  });
  source.join();
  squarer.join();
  sink.join();
  long long expected = 0;
  for (int i = 0; i < kItems; ++i) expected += 1LL * i * i;
  EXPECT_EQ(sum, expected);
}

TEST(StressTest, JobJarChurnWithWorkerTurnover) {
  // Workers come and go mid-job (simulating machine churn); the jar and a
  // poison protocol still deliver every task exactly once.
  auto space = std::make_shared<LocalSpace>("churn");
  Memo boss = Memo::Local(space);
  constexpr int kTasks = 600;
  constexpr int kWaves = 3, kWorkersPerWave = 4;
  std::atomic<int> done{0};

  for (int t = 0; t < kTasks; ++t) {
    ASSERT_TRUE(boss.put(Key::Named("jar"), MakeInt32(t)).ok());
  }
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkersPerWave; ++w) {
      workers.emplace_back([&] {
        Memo memo = Memo::Local(space);
        // Each worker handles a bounded batch then "leaves the machine".
        for (int i = 0; i < kTasks / (kWaves * kWorkersPerWave); ++i) {
          auto task = memo.get(Key::Named("jar"));
          if (!task.ok()) return;
          ASSERT_TRUE(memo.put(Key::Named("done"), MakeInt32(1)).ok());
          done.fetch_add(1);
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(*boss.count(Key::Named("jar")), 0u);
  EXPECT_EQ(*boss.count(Key::Named("done")),
            static_cast<std::uint64_t>(kTasks));
}

TEST(StressTest, GetAltFairnessUnderContention) {
  // 4 consumers waiting on alternatives over 8 folders while 2 producers
  // feed them; every produced memo is consumed exactly once.
  auto space = std::make_shared<LocalSpace>("alt-stress");
  constexpr int kPerProducer = 400;
  std::vector<Key> keys;
  for (std::uint32_t i = 0; i < 8; ++i) keys.push_back(Key::Named("alt", {i}));
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      Memo memo = Memo::Local(space);
      for (;;) {
        auto hit = memo.get_alt(keys);
        if (!hit.ok()) return;
        if (hit->second == nullptr) return;  // poison
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      Memo memo = Memo::Local(space);
      SplitMix64 rng(static_cast<std::uint64_t>(p) + 99);
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            memo.put(keys[rng.NextBelow(keys.size())], MakeInt32(i)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  // Wait for drain, then poison the consumers.
  Memo memo = Memo::Local(space);
  while (consumed.load() < 2 * kPerProducer) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(memo.put(keys[0], nullptr).ok());
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 2 * kPerProducer);
}

#ifdef DMEMO_LOCK_ORDER_CHECKS
// The workloads above drive directory, queue, worker-pool, and transport
// locks from many threads. In a checks-enabled build they run with the
// lock-order detector live; this test asserts the detector actually saw
// traffic, which means any inversion in those paths would have aborted the
// suite. Runs last in this file by declaration order, after the detector has
// been fed.
TEST(StressTest, LockOrderDetectorSilentOnStressWorkloads) {
  // Drive one small mixed workload of our own so the test is meaningful
  // even when run in isolation (--gtest_filter), not only after the suites
  // above have already fed the detector.
  auto space = std::make_shared<LocalSpace>("lockorder-probe");
  Memo memo = Memo::Local(space);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(memo.put(Key::Named("probe"), MakeInt32(i)).ok());
    ASSERT_TRUE(memo.get(Key::Named("probe")).ok());
  }
  // Sample while the space is alive: destroyed locks leave the graph.
  const auto stats = lock_order::GetStats();
  EXPECT_GT(stats.acquisitions, 0u);
  EXPECT_GT(stats.locks_tracked, 0u);
  // Reaching this line at all is the real assertion: the detector aborts
  // the process on any inversion, so silence == consistent lock order.
}
#endif  // DMEMO_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace dmemo
