// Failure injection: servers dying under parked clients, malformed wire
// traffic, poisoned payloads, unreachable peers, closed channels. The
// system's contract is graceful errors — never hangs, never crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <thread>

#include "runtime/cluster.h"
#include "server/memo_server.h"
#include "server/resilient_channel.h"
#include "server/rpc_channel.h"
#include "transferable/codec.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"
#include "util/metrics.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

std::int32_t Int(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

std::unique_ptr<Cluster> StartCluster(const AppDescription& adf) {
  auto cluster = Cluster::Start(adf);
  EXPECT_TRUE(cluster.ok()) << cluster.status();
  return std::move(*cluster);
}

ConnectionPtr DialOrDie(Cluster& cluster, const std::string& url) {
  auto conn = cluster.transport()->Dial(url);
  EXPECT_TRUE(conn.ok()) << conn.status();
  return std::move(*conn);
}



TEST(FailureTest, ServerShutdownWakesParkedClient) {
  auto cluster = StartCluster(
      Adf("APP f\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  std::atomic<bool> returned{false};
  std::thread parked([&] {
    auto v = memo.get(Key::Named("never"));
    EXPECT_FALSE(v.ok());  // CANCELLED (folder dir) or UNAVAILABLE (channel)
    returned = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(returned.load());
  cluster->Shutdown();
  parked.join();
  EXPECT_TRUE(returned.load());
}

TEST(FailureTest, OperationsAfterShutdownFailFast) {
  auto cluster = StartCluster(
      Adf("APP f2\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("x"), MakeInt32(1)).ok());
  cluster->Shutdown();
  EXPECT_FALSE(memo.put(Key::Named("x"), MakeInt32(2)).ok());
  EXPECT_FALSE(memo.get(Key::Named("x")).ok());
}

TEST(FailureTest, PeerMachineDownYieldsUnavailable) {
  // Start only hostA of a two-host ADF: keys owned by hostB are
  // unreachable and must error, not hang.
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  AppDescription adf = Adf(
      "APP down\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
  MemoServerOptions opts;
  opts.host = "hostA";
  opts.listen_url = "sim://hostA";
  opts.peers = {{"hostA", "sim://hostA"}, {"hostB", "sim://hostB"}};
  auto server_or = MemoServer::Start(transport, opts);
  ASSERT_TRUE(server_or.ok()) << server_or.status();
  auto server = std::move(*server_or);
  ASSERT_TRUE(server->RegisterApp(adf).ok());

  RemoteEngineOptions client_opts;
  client_opts.app = "down";
  client_opts.host = "hostA";
  Memo memo(*MakeRemoteEngine(transport, "sim://hostA", client_opts));

  // Find a key owned by the dead hostB.
  auto routing = *RoutingTable::Build(adf);
  Key remote_key;
  for (std::uint32_t i = 0;; ++i) {
    Key k = Key::Named("k", {i});
    if (routing.ServerForKey(QualifiedKey{"down", k}.ToBytes())->host ==
        "hostB") {
      remote_key = k;
      break;
    }
  }
  auto status = memo.put(remote_key, MakeInt32(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  server->Shutdown();
}

TEST(FailureTest, GarbageFramesDoNotKillTheServer) {
  auto cluster = StartCluster(
      Adf("APP g\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  // Raw connection spewing garbage at the server.
  auto conn = DialOrDie(*cluster, "sim://hostA");
  ASSERT_TRUE(conn->Send(Bytes{0xde, 0xad, 0xbe, 0xef}).ok());
  ASSERT_TRUE(conn->Send(Bytes{}).ok());                     // empty frame
  ASSERT_TRUE(conn->Send(Bytes(100, 0xff)).ok());            // junk request id
  ASSERT_TRUE(conn->Send(Bytes{1}).ok());                    // truncated header
  conn->Close();

  // A well-behaved client still gets service.
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("ok"), MakeInt32(5)).ok());
  auto v = memo.get(Key::Named("ok"));
  ASSERT_TRUE(v.ok());
}

TEST(FailureTest, MalformedRequestPayloadIsDropped) {
  auto cluster = StartCluster(
      Adf("APP g2\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  // A frame with valid kind/id but a bogus opcode: the reader drops it and
  // (by protocol) never answers, so the caller's timeout fires.
  ByteWriter frame;
  frame.u8(1);    // kind = request
  frame.u64(7);   // id
  frame.u8(200);  // invalid opcode
  ASSERT_TRUE(conn->Send(frame.data()).ok());
  conn->Close();

  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  EXPECT_TRUE(memo.put(Key::Named("still-alive"), MakeInt32(1)).ok());
}

TEST(FailureTest, PoisonedStoredValueSurfacesAsDataLoss) {
  // A rogue client stores bytes that do not decode as a transferable; the
  // receiving client reports DATA_LOSS instead of crashing.
  auto cluster = StartCluster(
      Adf("APP p\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
  Request req;
  req.op = Op::kPut;
  req.app = "p";
  req.key = Key::Named("poison");
  req.value = Bytes{0x01, 0xff, 0xff, 0xff};  // inline tag + junk type id
  auto resp = channel->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk);  // servers store bytes blindly

  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  auto v = memo.get(Key::Named("poison"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().code() == StatusCode::kDataLoss ||
              v.status().code() == StatusCode::kNotFound)
      << v.status();
  channel->Close();
}

TEST(FailureTest, ClientDisconnectDoesNotWedgeTheServer) {
  auto cluster = StartCluster(
      Adf("APP d\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  {
    // A client parks a blocking get, then its connection is torn down.
    auto conn = DialOrDie(*cluster, "sim://hostA");
    auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
    std::thread parked([channel] {
      Request get;
      get.op = Op::kGet;
      get.app = "d";
      get.key = Key::Named("never");
      auto resp = channel->Call(get);
      EXPECT_FALSE(resp.ok());  // channel closed under the call
    });
    std::this_thread::sleep_for(30ms);
    channel->Close();
    parked.join();
  }
  // The server keeps serving new clients.
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("alive"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("alive")).ok());
}

TEST(FailureTest, ReRegistrationReplacesRoutingTable) {
  auto cluster = StartCluster(
      Adf("APP r\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  // Re-register the same app with a different folder-server layout; the
  // server must accept and keep working (last registration wins).
  AppDescription v2 =
      Adf("APP r\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n1 hostA\n");
  ASSERT_TRUE(cluster->RegisterApp(v2).ok());
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("post-upgrade"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("post-upgrade")).ok());
}

TEST(FailureTest, InvalidAdfRegistrationRejectedOverTheWire) {
  auto cluster = StartCluster(
      Adf("APP ok\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
  Request reg;
  reg.op = Op::kRegisterApp;
  reg.text = "HOSTS\nghost 0 arch 1\n";  // 0 processors: invalid
  auto resp = channel->Call(reg);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->code, StatusCode::kOk);
  channel->Close();
}

TEST(FailureTest, DoubleShutdownAndCloseAreIdempotent) {
  auto cluster = StartCluster(
      Adf("APP i\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  cluster->Shutdown();
  cluster->Shutdown();  // second call is a no-op
  SUCCEED();
}

TEST(FailureTest, TupleOfAllFoldersSurvivesChurn) {
  // Stress: rapid connect/disconnect while traffic flows; the pruning in
  // the accept loop must keep the server healthy.
  auto cluster = StartCluster(
      Adf("APP churn\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  for (int round = 0; round < 30; ++round) {
    Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
    ASSERT_TRUE(memo.put(Key::Named("c"), MakeInt32(round)).ok());
    ASSERT_TRUE(memo.get(Key::Named("c")).ok());
    // Memo handle drops here: channel closes.
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Fault-tolerance layer: deadlines, reconnect, at-most-once retries
// (DESIGN.md "Fault tolerance"). These tests drive the simnet fault
// injection: live latency, seeded frame loss, partition/heal.
// ---------------------------------------------------------------------------

// Builds a one- or two-host deployment by hand so the test owns the
// SimNetwork, server options and client retry policy.
struct FaultCluster {
  SimNetworkPtr network = std::make_shared<SimNetwork>();
  TransportPtr transport = MakeSimTransport(network);
  std::vector<std::unique_ptr<MemoServer>> servers;

  MemoServer& StartServer(const std::string& host,
                          const std::vector<std::string>& all_hosts,
                          RetryPolicy forward_retry = RetryPolicy()) {
    MemoServerOptions opts;
    opts.host = host;
    opts.listen_url = "sim://" + host;
    for (const auto& h : all_hosts) opts.peers[h] = "sim://" + h;
    opts.forward_retry = forward_retry;
    auto server = MemoServer::Start(transport, opts);
    EXPECT_TRUE(server.ok()) << server.status();
    servers.push_back(std::move(*server));
    return *servers.back();
  }

  ~FaultCluster() {
    for (auto& s : servers) s->Shutdown();
  }
};

// A key of app `app` owned by `host` under `routing` (brute-force probe).
Key KeyOwnedBy(const RoutingTable& routing, const std::string& app,
               const std::string& host, std::uint32_t salt = 0) {
  for (std::uint32_t i = 0;; ++i) {
    Key k = Key::Named("owned", {salt, i});
    if (routing.ServerForKey(QualifiedKey{app, k}.ToBytes())->host == host) {
      return k;
    }
  }
}

TEST(FaultToleranceTest, TimedOutGetIsRedeliveredOnRetry) {
  // The lost-memo regression. Sequence before the fix:
  //   1. client kGet; folder server extracts the memo;
  //   2. the slow link delays the response past the attempt timeout;
  //   3. CallFor erases its pending entry, ReaderLoop drops the late
  //      response — the extracted memo is gone forever.
  // With at-most-once ids the retry is answered from the server's
  // completion cache: same memo, delivered once.
  FaultCluster fc;
  AppDescription adf =
      Adf("APP redeliver\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
  auto& server = fc.StartServer("hostA", {"hostA"});
  ASSERT_TRUE(server.RegisterApp(adf).ok());

  RemoteEngineOptions copts;
  copts.app = "redeliver";
  copts.host = "hostA";
  copts.retry.max_attempts = 8;
  copts.retry.attempt_timeout = 50ms;
  copts.retry.initial_backoff = 2ms;
  copts.retry.max_backoff = 10ms;
  Memo memo(*MakeRemoteEngine(fc.transport, "sim://hostA", copts));
  ASSERT_TRUE(memo.put(Key::Named("precious"), MakeInt32(77)).ok());

  // Slow the link so the first attempt's response arrives after the
  // attempt timeout; heal it mid-retry from the side.
  SimLinkProfile slow;
  slow.latency = 100ms;
  fc.network->SetEndpointLinkProfile("hostA", slow);
  std::thread healer([&] {
    std::this_thread::sleep_for(120ms);
    fc.network->SetEndpointLinkProfile("hostA", SimLinkProfile{});
  });

  auto v = memo.get(Key::Named("precious"));
  healer.join();
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(Int(*v), 77);
  // The redelivery came from the completion cache, not a re-extraction.
  EXPECT_GE(server.stats().dedup_hits, 1u);
  // And the memo was consumed exactly once: nothing left behind.
  auto leftover = memo.get_skip(Key::Named("precious"));
  ASSERT_TRUE(leftover.ok());
  EXPECT_FALSE(leftover->has_value());
}

TEST(FaultToleranceTest, PartitionMidWorkloadLosesAndDuplicatesNothing) {
  // Tentpole acceptance: kill the hostA->hostB link mid-workload, heal it,
  // and require every memo to arrive exactly once, with the forwarding
  // channel reconnecting on its own.
  Counter* reconnects =
      MetricsRegistry::Global().GetCounter("dmemo_rpc_reconnects_total");
  const std::uint64_t reconnects_before = reconnects->Value();

  FaultCluster fc;
  AppDescription adf = Adf(
      "APP part\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
  RetryPolicy patient;
  patient.max_attempts = 200;
  patient.initial_backoff = 2ms;
  patient.max_backoff = 20ms;
  auto& server_a = fc.StartServer("hostA", {"hostA", "hostB"}, patient);
  auto& server_b = fc.StartServer("hostB", {"hostA", "hostB"}, patient);
  ASSERT_TRUE(server_a.RegisterApp(adf).ok());
  ASSERT_TRUE(server_b.RegisterApp(adf).ok());

  RemoteEngineOptions copts;
  copts.app = "part";
  copts.host = "hostA";
  copts.retry = patient;
  Memo memo(*MakeRemoteEngine(fc.transport, "sim://hostA", copts));

  auto routing = *RoutingTable::Build(adf);
  const Key remote = KeyOwnedBy(routing, "part", "hostB");

  std::thread chaos([&] {
    std::this_thread::sleep_for(15ms);
    fc.network->Partition("hostB");
    std::this_thread::sleep_for(80ms);
    fc.network->Heal("hostB");
  });

  constexpr int kMemos = 40;
  for (int i = 0; i < kMemos; ++i) {
    ASSERT_TRUE(memo.put(remote, MakeInt32(i)).ok()) << "put " << i;
    std::this_thread::sleep_for(2ms);
  }
  chaos.join();

  // Exactly kMemos memos on hostB's folder: none lost, none duplicated.
  auto count = memo.count(remote);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, static_cast<std::uint64_t>(kMemos));
  std::multiset<std::int32_t> seen;
  for (int i = 0; i < kMemos; ++i) {
    auto v = memo.get(remote);
    ASSERT_TRUE(v.ok()) << v.status();
    seen.insert(Int(*v));
  }
  for (int i = 0; i < kMemos; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
  // The partition actually severed a live link and the peer channel
  // re-dialed through it.
  EXPECT_GT(reconnects->Value(), reconnects_before);
}

TEST(FaultToleranceTest, DeadlineExceededSurfacesAsErrorNotHang) {
  Counter* deadline_exceeded = MetricsRegistry::Global().GetCounter(
      "dmemo_rpc_deadline_exceeded_total");
  const std::uint64_t exceeded_before = deadline_exceeded->Value();

  FaultCluster fc;
  AppDescription adf =
      Adf("APP dl\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
  auto& server = fc.StartServer("hostA", {"hostA"});
  ASSERT_TRUE(server.RegisterApp(adf).ok());

  RemoteEngineOptions copts;
  copts.app = "dl";
  copts.host = "hostA";
  copts.call_timeout = 100ms;  // bounded engine: no call may hang
  Memo memo(*MakeRemoteEngine(fc.transport, "sim://hostA", copts));

  const auto start = std::chrono::steady_clock::now();
  auto v = memo.get(Key::Named("never-put"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTimedOut) << v.status();
  EXPECT_LT(elapsed, 5s);  // bounded, with generous CI slack
  EXPECT_GT(deadline_exceeded->Value(), exceeded_before);

  // The engine survives the timeout: later calls still work.
  ASSERT_TRUE(memo.put(Key::Named("after"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("after")).ok());
}

TEST(FaultToleranceTest, RetransmittedPutExecutesOnce) {
  // A retransmit is byte-identical to the original — same request_id. The
  // server must deposit one memo, not two, and answer both transmits.
  auto cluster = StartCluster(
      Adf("APP dedup\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  MemoServer& server = cluster->server("hostA");

  Request put;
  put.op = Op::kPut;
  put.app = "dedup";
  put.key = Key::Named("once");
  put.value = EncodeGraphToBytes(MakeInt32(9));
  put.request_id = NextRequestId();
  Response first = server.Handle(put);
  Response retried = server.Handle(put);
  EXPECT_EQ(first.code, StatusCode::kOk);
  EXPECT_EQ(retried.code, StatusCode::kOk);
  EXPECT_GE(server.stats().dedup_hits, 1u);

  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  auto count = memo.count(Key::Named("once"));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
}

TEST(FaultToleranceTest, RetransmittedGetRedeliversSameValue) {
  // The destructive half: the first kGet extracted the memo; the
  // retransmit must re-deliver it from the cache instead of parking on an
  // empty folder.
  auto cluster = StartCluster(
      Adf("APP dedupg\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  MemoServer& server = cluster->server("hostA");
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("one-shot"), MakeInt32(31)).ok());

  Request get;
  get.op = Op::kGet;
  get.app = "dedupg";
  get.key = Key::Named("one-shot");
  get.request_id = NextRequestId();
  Response first = server.Handle(get);
  Response retried = server.Handle(get);
  ASSERT_EQ(first.code, StatusCode::kOk);
  ASSERT_EQ(retried.code, StatusCode::kOk);
  ASSERT_TRUE(first.has_value);
  ASSERT_TRUE(retried.has_value);
  EXPECT_EQ(first.value, retried.value);
}

TEST(FaultToleranceTest, LossyLinkWorkloadCompletesExactlyOnce) {
  // 15% of frames vanish (seeded, so the run is reproducible). Attempt
  // timeouts turn each loss into a retransmit; request ids keep the
  // retransmits at-most-once. The workload must finish with every value
  // delivered exactly once.
  FaultCluster fc;
  fc.network->SeedFaults(0xdecaf);
  AppDescription adf =
      Adf("APP lossy\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
  auto& server = fc.StartServer("hostA", {"hostA"});
  ASSERT_TRUE(server.RegisterApp(adf).ok());

  RemoteEngineOptions copts;
  copts.app = "lossy";
  copts.host = "hostA";
  copts.retry.max_attempts = 30;
  copts.retry.attempt_timeout = 40ms;
  copts.retry.initial_backoff = 1ms;
  copts.retry.max_backoff = 5ms;
  Memo memo(*MakeRemoteEngine(fc.transport, "sim://hostA", copts));

  SimLinkProfile lossy;
  lossy.drop_probability = 0.15;
  fc.network->SetEndpointLinkProfile("hostA", lossy);

  constexpr int kMemos = 25;
  const Key key = Key::Named("lossy-k");
  for (int i = 0; i < kMemos; ++i) {
    ASSERT_TRUE(memo.put(key, MakeInt32(i)).ok()) << "put " << i;
  }
  std::multiset<std::int32_t> seen;
  for (int i = 0; i < kMemos; ++i) {
    auto v = memo.get(key);
    ASSERT_TRUE(v.ok()) << v.status();
    seen.insert(Int(*v));
  }
  for (int i = 0; i < kMemos; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
  auto leftover = memo.get_skip(key);
  ASSERT_TRUE(leftover.ok());
  EXPECT_FALSE(leftover->has_value());
}

TEST(FaultToleranceTest, BatchedRetransmitsStayExactlyOnceUnderFrameLoss) {
  // The async/batched flavor of the lossy-link workload: pipelined
  // put_async/get_async calls coalesce into packed frames, and a dropped
  // frame now loses *several* calls at once. Each call's attempt timer
  // must fire independently, the retransmits re-coalesce into fresh
  // batches, and the per-call request ids must keep every retransmitted
  // op at-most-once — zero lost, zero duplicated, exactly as the sync
  // path promises.
  // Cap the batch size so 25 pipelined puts span several packed frames —
  // with the default 64-op cap they coalesce into one frame and the
  // seeded 15% loss may never bite (the dedup_hits assertion below needs
  // at least one dropped frame). Read at channel construction, so set it
  // before any channel exists.
  ::setenv("DMEMO_RPC_BATCH_OPS", "4", /*overwrite=*/1);
  FaultCluster fc;
  fc.network->SeedFaults(0xbadcafe);
  AppDescription adf =
      Adf("APP lossyb\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
  auto& server = fc.StartServer("hostA", {"hostA"});
  ASSERT_TRUE(server.RegisterApp(adf).ok());

  RemoteEngineOptions copts;
  copts.app = "lossyb";
  copts.host = "hostA";
  copts.retry.max_attempts = 30;
  copts.retry.attempt_timeout = 40ms;
  copts.retry.initial_backoff = 1ms;
  copts.retry.max_backoff = 5ms;
  Memo memo(*MakeRemoteEngine(fc.transport, "sim://hostA", copts));

  SimLinkProfile lossy;
  lossy.drop_probability = 0.15;
  fc.network->SetEndpointLinkProfile("hostA", lossy);

  constexpr int kMemos = 25;
  const Key key = Key::Named("lossy-async");
  std::vector<std::future<Status>> puts;
  puts.reserve(kMemos);
  for (int i = 0; i < kMemos; ++i) {
    puts.push_back(memo.put_async(key, MakeInt32(i)));
  }
  for (int i = 0; i < kMemos; ++i) {
    ASSERT_EQ(puts[i].wait_for(30s), std::future_status::ready)
        << "put " << i << " hung under frame loss";
    ASSERT_TRUE(puts[i].get().ok()) << "put " << i;
  }
  // Retransmitted puts deposited exactly one memo each.
  auto count = memo.count(key);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, static_cast<std::uint64_t>(kMemos));

  std::vector<std::future<Result<TransferablePtr>>> gets;
  gets.reserve(kMemos);
  for (int i = 0; i < kMemos; ++i) {
    gets.push_back(memo.get_async(key));
  }
  std::multiset<std::int32_t> seen;
  for (int i = 0; i < kMemos; ++i) {
    ASSERT_EQ(gets[i].wait_for(30s), std::future_status::ready)
        << "get " << i << " hung under frame loss";
    auto v = gets[i].get();
    ASSERT_TRUE(v.ok()) << "get " << i << ": " << v.status();
    seen.insert(Int(*v));
  }
  for (int i = 0; i < kMemos; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
  auto leftover = memo.get_skip(key);
  ASSERT_TRUE(leftover.ok());
  EXPECT_FALSE(leftover->has_value());
  // The loss actually bit: at least one retransmit was answered from the
  // completion cache instead of re-executing.
  EXPECT_GE(server.stats().dedup_hits, 1u);
  ::unsetenv("DMEMO_RPC_BATCH_OPS");
}

TEST(FaultToleranceTest, ResilientChannelFailsFastWhenClosedOrUnreachable) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  ResilientChannel::Options opts;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff = 1ms;
  auto channel = std::make_shared<ResilientChannel>(
      transport, "sim://nowhere", opts);
  Request ping;
  ping.op = Op::kPing;
  auto resp = channel->Call(ping);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable) << resp.status();
  channel->Close();
  auto after_close = channel->Call(ping);
  ASSERT_FALSE(after_close.ok());
  EXPECT_EQ(after_close.status().code(), StatusCode::kCancelled);
}

TEST(FaultToleranceTest, ConcurrentFirstTouchSharesOnePeerChannel) {
  // The channel-leak regression: two threads racing to create the first
  // channel to a peer used to both dial, and the loser's reader thread was
  // stranded forever. Creation is now find-or-create under the server
  // lock; hammering the first touch from many threads must yield exactly
  // one outbound link.
  FaultCluster fc;
  AppDescription adf = Adf(
      "APP race\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
  auto& server_a = fc.StartServer("hostA", {"hostA", "hostB"});
  auto& server_b = fc.StartServer("hostB", {"hostA", "hostB"});
  ASSERT_TRUE(server_a.RegisterApp(adf).ok());
  ASSERT_TRUE(server_b.RegisterApp(adf).ok());

  auto routing = *RoutingTable::Build(adf);
  const Key remote = KeyOwnedBy(routing, "race", "hostB");
  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      Request put;
      put.op = Op::kPut;
      put.app = "race";
      put.key = remote;
      put.value = EncodeGraphToBytes(MakeInt32(t));
      if (server_a.Handle(put).code != StatusCode::kOk) ++failures;
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_a.peer_traffic().size(), 1u);
}

}  // namespace
}  // namespace dmemo
