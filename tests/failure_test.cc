// Failure injection: servers dying under parked clients, malformed wire
// traffic, poisoned payloads, unreachable peers, closed channels. The
// system's contract is graceful errors — never hangs, never crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/cluster.h"
#include "server/memo_server.h"
#include "server/rpc_channel.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

std::unique_ptr<Cluster> StartCluster(const AppDescription& adf) {
  auto cluster = Cluster::Start(adf);
  EXPECT_TRUE(cluster.ok()) << cluster.status();
  return std::move(*cluster);
}

ConnectionPtr DialOrDie(Cluster& cluster, const std::string& url) {
  auto conn = cluster.transport()->Dial(url);
  EXPECT_TRUE(conn.ok()) << conn.status();
  return std::move(*conn);
}



TEST(FailureTest, ServerShutdownWakesParkedClient) {
  auto cluster = StartCluster(
      Adf("APP f\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  std::atomic<bool> returned{false};
  std::thread parked([&] {
    auto v = memo.get(Key::Named("never"));
    EXPECT_FALSE(v.ok());  // CANCELLED (folder dir) or UNAVAILABLE (channel)
    returned = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(returned.load());
  cluster->Shutdown();
  parked.join();
  EXPECT_TRUE(returned.load());
}

TEST(FailureTest, OperationsAfterShutdownFailFast) {
  auto cluster = StartCluster(
      Adf("APP f2\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("x"), MakeInt32(1)).ok());
  cluster->Shutdown();
  EXPECT_FALSE(memo.put(Key::Named("x"), MakeInt32(2)).ok());
  EXPECT_FALSE(memo.get(Key::Named("x")).ok());
}

TEST(FailureTest, PeerMachineDownYieldsUnavailable) {
  // Start only hostA of a two-host ADF: keys owned by hostB are
  // unreachable and must error, not hang.
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  AppDescription adf = Adf(
      "APP down\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n");
  MemoServerOptions opts;
  opts.host = "hostA";
  opts.listen_url = "sim://hostA";
  opts.peers = {{"hostA", "sim://hostA"}, {"hostB", "sim://hostB"}};
  auto server_or = MemoServer::Start(transport, opts);
  ASSERT_TRUE(server_or.ok()) << server_or.status();
  auto server = std::move(*server_or);
  ASSERT_TRUE(server->RegisterApp(adf).ok());

  RemoteEngineOptions client_opts;
  client_opts.app = "down";
  client_opts.host = "hostA";
  Memo memo(*MakeRemoteEngine(transport, "sim://hostA", client_opts));

  // Find a key owned by the dead hostB.
  auto routing = *RoutingTable::Build(adf);
  Key remote_key;
  for (std::uint32_t i = 0;; ++i) {
    Key k = Key::Named("k", {i});
    if (routing.ServerForKey(QualifiedKey{"down", k}.ToBytes())->host ==
        "hostB") {
      remote_key = k;
      break;
    }
  }
  auto status = memo.put(remote_key, MakeInt32(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  server->Shutdown();
}

TEST(FailureTest, GarbageFramesDoNotKillTheServer) {
  auto cluster = StartCluster(
      Adf("APP g\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  // Raw connection spewing garbage at the server.
  auto conn = DialOrDie(*cluster, "sim://hostA");
  ASSERT_TRUE(conn->Send(Bytes{0xde, 0xad, 0xbe, 0xef}).ok());
  ASSERT_TRUE(conn->Send(Bytes{}).ok());                     // empty frame
  ASSERT_TRUE(conn->Send(Bytes(100, 0xff)).ok());            // junk request id
  ASSERT_TRUE(conn->Send(Bytes{1}).ok());                    // truncated header
  conn->Close();

  // A well-behaved client still gets service.
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("ok"), MakeInt32(5)).ok());
  auto v = memo.get(Key::Named("ok"));
  ASSERT_TRUE(v.ok());
}

TEST(FailureTest, MalformedRequestPayloadIsDropped) {
  auto cluster = StartCluster(
      Adf("APP g2\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  // A frame with valid kind/id but a bogus opcode: the reader drops it and
  // (by protocol) never answers, so the caller's timeout fires.
  ByteWriter frame;
  frame.u8(1);    // kind = request
  frame.u64(7);   // id
  frame.u8(200);  // invalid opcode
  ASSERT_TRUE(conn->Send(frame.data()).ok());
  conn->Close();

  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  EXPECT_TRUE(memo.put(Key::Named("still-alive"), MakeInt32(1)).ok());
}

TEST(FailureTest, PoisonedStoredValueSurfacesAsDataLoss) {
  // A rogue client stores bytes that do not decode as a transferable; the
  // receiving client reports DATA_LOSS instead of crashing.
  auto cluster = StartCluster(
      Adf("APP p\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
  Request req;
  req.op = Op::kPut;
  req.app = "p";
  req.key = Key::Named("poison");
  req.value = Bytes{0x01, 0xff, 0xff, 0xff};  // inline tag + junk type id
  auto resp = channel->Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kOk);  // servers store bytes blindly

  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  auto v = memo.get(Key::Named("poison"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().code() == StatusCode::kDataLoss ||
              v.status().code() == StatusCode::kNotFound)
      << v.status();
  channel->Close();
}

TEST(FailureTest, ClientDisconnectDoesNotWedgeTheServer) {
  auto cluster = StartCluster(
      Adf("APP d\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  {
    // A client parks a blocking get, then its connection is torn down.
    auto conn = DialOrDie(*cluster, "sim://hostA");
    auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
    std::thread parked([channel] {
      Request get;
      get.op = Op::kGet;
      get.app = "d";
      get.key = Key::Named("never");
      auto resp = channel->Call(get);
      EXPECT_FALSE(resp.ok());  // channel closed under the call
    });
    std::this_thread::sleep_for(30ms);
    channel->Close();
    parked.join();
  }
  // The server keeps serving new clients.
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("alive"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("alive")).ok());
}

TEST(FailureTest, ReRegistrationReplacesRoutingTable) {
  auto cluster = StartCluster(
      Adf("APP r\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  // Re-register the same app with a different folder-server layout; the
  // server must accept and keep working (last registration wins).
  AppDescription v2 =
      Adf("APP r\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n1 hostA\n");
  ASSERT_TRUE(cluster->RegisterApp(v2).ok());
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("post-upgrade"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("post-upgrade")).ok());
}

TEST(FailureTest, InvalidAdfRegistrationRejectedOverTheWire) {
  auto cluster = StartCluster(
      Adf("APP ok\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  auto conn = DialOrDie(*cluster, "sim://hostA");
  auto channel = RpcChannel::Create(std::move(conn), nullptr, nullptr);
  Request reg;
  reg.op = Op::kRegisterApp;
  reg.text = "HOSTS\nghost 0 arch 1\n";  // 0 processors: invalid
  auto resp = channel->Call(reg);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->code, StatusCode::kOk);
  channel->Close();
}

TEST(FailureTest, DoubleShutdownAndCloseAreIdempotent) {
  auto cluster = StartCluster(
      Adf("APP i\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  cluster->Shutdown();
  cluster->Shutdown();  // second call is a no-op
  SUCCEED();
}

TEST(FailureTest, TupleOfAllFoldersSurvivesChurn) {
  // Stress: rapid connect/disconnect while traffic flows; the pruning in
  // the accept loop must keep the server healthy.
  auto cluster = StartCluster(
      Adf("APP churn\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  for (int round = 0; round < 30; ++round) {
    Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
    ASSERT_TRUE(memo.put(Key::Named("c"), MakeInt32(round)).ok());
    ASSERT_TRUE(memo.get(Key::Named("c")).ok());
    // Memo handle drops here: channel closes.
  }
  SUCCEED();
}

}  // namespace
}  // namespace dmemo
