// Unit tests for the zero-copy buffer chain (util/iobuf.h): slice
// bookkeeping, zero-copy adoption/sharing, the counted copy points, and
// reader lifetime guarantees the message pipeline relies on.
#include "util/iobuf.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

#include "util/bytes.h"

namespace dmemo {
namespace {

Bytes Blob(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string AsString(const IoBuf& b) {
  Bytes flat = b.Flatten();
  return std::string(flat.begin(), flat.end());
}

TEST(IoBufTest, DefaultIsEmpty) {
  IoBuf b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.slice_count(), 0u);
  EXPECT_TRUE(b.Flatten().empty());
}

TEST(IoBufTest, FromBytesAdoptsWithoutCopying) {
  Bytes payload = Blob("hello world");
  const std::uint8_t* raw = payload.data();
  std::uint64_t before = PayloadCopyBytesTotal();
  IoBuf b = IoBuf::FromBytes(std::move(payload));
  EXPECT_EQ(PayloadCopyBytesTotal(), before);  // adoption, not a copy
  ASSERT_EQ(b.slice_count(), 1u);
  EXPECT_EQ(b.slice(0).data, raw);  // same block, pointer-identical
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(AsString(b), "hello world");
}

TEST(IoBufTest, FromChunksAdoptsEachChunkAsOneSlice) {
  std::vector<Bytes> chunks;
  chunks.push_back(Blob("abc"));
  chunks.push_back(Blob(""));  // empty chunks are dropped
  chunks.push_back(Blob("defg"));
  const std::uint8_t* raw0 = chunks[0].data();
  const std::uint8_t* raw2 = chunks[2].data();
  std::uint64_t before = PayloadCopyBytesTotal();
  IoBuf b = IoBuf::FromChunks(std::move(chunks));
  EXPECT_EQ(PayloadCopyBytesTotal(), before);
  ASSERT_EQ(b.slice_count(), 2u);
  EXPECT_EQ(b.slice(0).data, raw0);
  EXPECT_EQ(b.slice(1).data, raw2);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_EQ(AsString(b), "abcdefg");
}

TEST(IoBufTest, CopyOfIsCountedAndIndependent) {
  Bytes src = Blob("payload");
  std::uint64_t before = PayloadCopyBytesTotal();
  IoBuf b = IoBuf::CopyOf(src);
  EXPECT_EQ(PayloadCopyBytesTotal(), before + src.size());
  src[0] = 'X';  // mutating the source must not show through
  EXPECT_EQ(AsString(b), "payload");
}

TEST(IoBufTest, AppendSplicesSlicesWithoutCopying) {
  IoBuf a = IoBuf::FromBytes(Blob("head"));
  IoBuf tail = IoBuf::FromBytes(Blob("-tail"));
  const std::uint8_t* tail_raw = tail.slice(0).data;
  std::uint64_t before = PayloadCopyBytesTotal();
  a.Append(std::move(tail));
  EXPECT_EQ(PayloadCopyBytesTotal(), before);
  ASSERT_EQ(a.slice_count(), 2u);
  EXPECT_EQ(a.slice(1).data, tail_raw);
  EXPECT_EQ(AsString(a), "head-tail");
}

TEST(IoBufTest, CopyingAnIoBufSharesTheSameBlocks) {
  IoBuf a = IoBuf::FromBytes(Blob("shared-block"));
  std::uint64_t before = PayloadCopyBytesTotal();
  IoBuf b = a;  // copies slice descriptors, not payload bytes
  EXPECT_EQ(PayloadCopyBytesTotal(), before);
  ASSERT_EQ(b.slice_count(), 1u);
  EXPECT_EQ(b.slice(0).data, a.slice(0).data);
  EXPECT_TRUE(a == b);
}

TEST(IoBufTest, ShareAliasesSubrangeAcrossSliceBoundary) {
  std::vector<Bytes> chunks;
  chunks.push_back(Blob("abcd"));
  chunks.push_back(Blob("efgh"));
  IoBuf b = IoBuf::FromChunks(std::move(chunks));
  std::uint64_t before = PayloadCopyBytesTotal();
  IoBuf mid = b.Share(2, 4);  // "cdef": spans both slices
  EXPECT_EQ(PayloadCopyBytesTotal(), before);
  EXPECT_EQ(mid.size(), 4u);
  ASSERT_EQ(mid.slice_count(), 2u);
  EXPECT_EQ(AsString(mid), "cdef");
  // The shared range aliases the original blocks.
  EXPECT_EQ(mid.slice(0).data, b.slice(0).data + 2);
  EXPECT_EQ(mid.slice(1).data, b.slice(1).data);
}

TEST(IoBufTest, ShareKeepsBytesAliveAfterSourceDies) {
  IoBuf shared;
  {
    IoBuf source = IoBuf::FromBytes(Blob("long-lived payload bytes"));
    shared = source.Share(5, 5);  // "lived"
  }  // source destroyed; the block must survive via shared ownership
  EXPECT_EQ(AsString(shared), "lived");
}

TEST(IoBufTest, FlattenAndContiguousViewCountOnlyWhenCopying) {
  IoBuf single = IoBuf::FromBytes(Blob("single"));
  Bytes scratch;
  std::uint64_t before = PayloadCopyBytesTotal();
  auto view = single.ContiguousView(scratch);
  EXPECT_EQ(PayloadCopyBytesTotal(), before);  // single slice: in place
  EXPECT_EQ(view.data(), single.slice(0).data);

  std::vector<Bytes> chunks;
  chunks.push_back(Blob("two"));
  chunks.push_back(Blob("-slices"));
  IoBuf multi = IoBuf::FromChunks(std::move(chunks));
  before = PayloadCopyBytesTotal();
  Bytes scratch2;
  auto view2 = multi.ContiguousView(scratch2);
  EXPECT_EQ(PayloadCopyBytesTotal(), before + multi.size());  // flattened
  EXPECT_EQ(std::string(view2.begin(), view2.end()), "two-slices");
}

TEST(IoBufTest, CopyToAppendsAllSlicesToWriter) {
  std::vector<Bytes> chunks;
  chunks.push_back(Blob("ab"));
  chunks.push_back(Blob("cd"));
  IoBuf b = IoBuf::FromChunks(std::move(chunks));
  ByteWriter out;
  std::uint64_t before = PayloadCopyBytesTotal();
  b.CopyTo(out);
  EXPECT_EQ(PayloadCopyBytesTotal(), before + b.size());
  EXPECT_EQ(std::string(out.data().begin(), out.data().end()), "abcd");
}

TEST(IoBufTest, EqualityIgnoresSliceStructure) {
  std::vector<Bytes> chunks;
  chunks.push_back(Blob("sp"));
  chunks.push_back(Blob("lit"));
  IoBuf split = IoBuf::FromChunks(std::move(chunks));
  IoBuf whole = IoBuf::FromBytes(Blob("split"));
  EXPECT_TRUE(split == whole);
  EXPECT_TRUE(split == Blob("split"));
  EXPECT_FALSE(split == Blob("splat"));
  EXPECT_FALSE(split == Blob("spli"));
}

TEST(IoBufReaderTest, ReadsSingleSliceInPlace) {
  ByteWriter w;
  w.u8(7);
  w.str("alpha");
  w.varint(3);
  w.bytes(Blob("xyz"));
  IoBuf frame = IoBuf::FromBytes(w.take());

  std::uint64_t before = PayloadCopyBytesTotal();
  IoBufReader reader(frame);
  EXPECT_EQ(PayloadCopyBytesTotal(), before);  // single slice: no flatten
  ByteReader& in = reader.base();
  auto tag = in.u8();
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, 7);
  auto s = in.str();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "alpha");
  auto len = in.varint();
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 3u);
}

TEST(IoBufReaderTest, BytesSharedAliasesTheBackingBlock) {
  ByteWriter w;
  w.bytes(Blob("value"));  // varint length prefix + 5 payload bytes
  IoBuf frame = IoBuf::FromBytes(w.take());
  const std::uint8_t* base = frame.slice(0).data;

  IoBufReader reader(frame);
  std::uint64_t before = PayloadCopyBytesTotal();
  auto value = reader.bytes_shared();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(PayloadCopyBytesTotal(), before);  // alias, not a copy
  ASSERT_EQ(value->slice_count(), 1u);
  // Points into the original frame, one varint byte in.
  EXPECT_EQ(value->slice(0).data, base + 1);
  EXPECT_EQ(AsString(*value), "value");
}

TEST(IoBufReaderTest, SharedValueOutlivesReaderAndFrame) {
  IoBuf value;
  {
    ByteWriter w;
    w.bytes(Blob("survivor"));
    IoBuf frame = IoBuf::FromBytes(w.take());
    IoBufReader reader(frame);
    auto got = reader.bytes_shared();
    ASSERT_TRUE(got.ok());
    value = std::move(*got);
  }  // frame and reader destroyed
  EXPECT_EQ(AsString(value), "survivor");
}

TEST(IoBufReaderTest, BytesSharedRejectsTruncatedLength) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes, provides 2
  w.raw(Blob("ab"));
  IoBuf frame = IoBuf::FromBytes(w.take());
  IoBufReader reader(frame);
  EXPECT_FALSE(reader.bytes_shared().ok());
}

TEST(IoBufReaderTest, MultiSliceChainFlattensOnceUpFront) {
  std::vector<Bytes> chunks;
  ByteWriter w;
  w.varint(4);
  chunks.push_back(w.take());
  chunks.push_back(Blob("data"));
  IoBuf frame = IoBuf::FromChunks(std::move(chunks));

  std::uint64_t before = PayloadCopyBytesTotal();
  IoBufReader reader(frame);
  EXPECT_EQ(PayloadCopyBytesTotal(), before + frame.size());  // one flatten
  auto value = reader.bytes_shared();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(AsString(*value), "data");
}

}  // namespace
}  // namespace dmemo
