// Tests for the observability layer: the metrics registry (counters, gauges,
// histograms, snapshots, text exposition), the trace ring, trace-id
// generation, and the log-level / slow-op configuration knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

// ---- counters -----------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, SameNameAndLabelsYieldSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup_total", "k=\"v\"");
  Counter* b = registry.GetCounter("dup_total", "k=\"v\"");
  Counter* c = registry.GetCounter("dup_total", "k=\"w\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(2);
  EXPECT_EQ(b->Value(), 2u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

// ---- histograms ---------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_latency_us");
  const auto& bounds = Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), Histogram::kBounds);
  ASSERT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));

  // `le` bounds are inclusive: a value equal to a bound lands in that bucket.
  h->Observe(0);          // <= 1 -> bucket 0
  h->Observe(1);          // == bounds[0] -> bucket 0
  h->Observe(2);          // == bounds[1] -> bucket 1
  h->Observe(3);          // <= 5 -> bucket 2
  h->Observe(bounds.back());      // last finite bucket
  h->Observe(bounds.back() + 1);  // overflow bucket

  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(Histogram::kBounds - 1), 1u);
  EXPECT_EQ(h->BucketCount(Histogram::kBounds), 1u);  // overflow
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_EQ(h->Sum(), 0u + 1 + 2 + 3 + bounds.back() + bounds.back() + 1);
}

TEST(MetricsTest, HistogramConcurrentObserve) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_conc_latency_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<std::uint64_t>(i % 2000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- snapshots & exposition ---------------------------------------------------

TEST(MetricsTest, SnapshotIsSortedAndConsistent) {
  MetricsRegistry registry;
  registry.GetCounter("b_total")->Add(5);
  registry.GetGauge("a_depth")->Set(-4);
  Histogram* h = registry.GetHistogram("c_latency_us", "op=\"put\"");
  h->Observe(3);
  h->Observe(7);

  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_depth");
  EXPECT_EQ(samples[1].name, "b_total");
  EXPECT_EQ(samples[2].name, "c_latency_us");

  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[0].value, -4);
  EXPECT_EQ(samples[1].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[1].value, 5);

  const MetricSample& hist = samples[2];
  EXPECT_EQ(hist.kind, MetricKind::kHistogram);
  EXPECT_EQ(hist.labels, "op=\"put\"");
  ASSERT_EQ(hist.buckets.size(), Histogram::kBuckets);
  // Per-snapshot consistency: the reported count is derived from the same
  // bucket reads it ships, so they always agree.
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : hist.buckets) bucket_sum += b;
  EXPECT_EQ(hist.count, bucket_sum);
  EXPECT_EQ(hist.count, 2u);
  EXPECT_EQ(hist.sum, 10u);
}

TEST(MetricsTest, TextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", "host=\"a\"")->Add(3);
  registry.GetGauge("depth")->Set(2);
  Histogram* h = registry.GetHistogram("lat_us");
  h->Observe(1);
  h->Observe(100);

  std::string text;
  registry.WriteText(text);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{host=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  // Cumulative buckets: le="1" holds 1 observation, le="100" both.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 101"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 2"), std::string::npos);
}

TEST(MetricsTest, SnapshotWhileWritersRun) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("racy_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counter->Increment();
  });
  for (int i = 0; i < 100; ++i) {
    auto samples = registry.Snapshot();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_GE(samples[0].value, 0);
  }
  stop.store(true);
  writer.join();
  // Monotone across snapshots: the final value covers everything written.
  EXPECT_EQ(static_cast<std::uint64_t>(registry.Snapshot()[0].value),
            counter->Value());
}

// ---- trace ring ---------------------------------------------------------------

SpanRecord Span(std::uint64_t id) {
  SpanRecord s;
  s.trace_id = id;
  s.component = "test";
  s.op = "put";
  return s;
}

TEST(TraceRingTest, WrapsOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) ring.Record(Span(i));
  EXPECT_EQ(ring.TotalRecorded(), 6u);
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(spans.back().trace_id, 6u);
}

TEST(TraceRingTest, SnapshotBeforeWrap) {
  TraceRing ring(8);
  ring.Record(Span(11));
  ring.Record(Span(12));
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 11u);
  EXPECT_EQ(spans[1].trace_id, 12u);
}

TEST(TraceRingTest, ConcurrentWritersWrapConsistently) {
  // Many writers push through a small ring; whatever interleaving happens,
  // the ring must end exactly full, count every record, and retain only
  // genuine records (no torn or default-constructed slots).
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  TraceRing ring(kCapacity);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Encode writer and sequence into the id: high byte = writer + 1.
        ring.Record(Span((static_cast<std::uint64_t>(t + 1) << 56) | i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.TotalRecorded(), kThreads * kPerThread);
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), kCapacity);
  for (const SpanRecord& span : spans) {
    const std::uint64_t writer = span.trace_id >> 56;
    const std::uint64_t seq = span.trace_id & 0xffffffffffffffULL;
    EXPECT_GE(writer, 1u);
    EXPECT_LE(writer, static_cast<std::uint64_t>(kThreads));
    EXPECT_LT(seq, kPerThread);
    EXPECT_EQ(span.component, "test");
  }
  // Each writer's retained spans appear in its program order (the ring
  // can interleave writers but never reorder one writer's records).
  std::map<std::uint64_t, std::uint64_t> last_seq;
  for (const SpanRecord& span : spans) {
    const std::uint64_t writer = span.trace_id >> 56;
    const std::uint64_t seq = span.trace_id & 0xffffffffffffffULL;
    auto it = last_seq.find(writer);
    if (it != last_seq.end()) EXPECT_GT(seq, it->second);
    last_seq[writer] = seq;
  }
}

// ---- histogram exemplars ------------------------------------------------------

TEST(MetricsTest, HistogramExemplarsTrackSampledObservations) {
  Histogram h;
  // No observations: every bucket's exemplar is 0.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.ExemplarTraceId(i), 0u);
  }
  // A sampled observation pins its trace id to the landing bucket.
  h.Observe(1, 0xaaaa);  // bucket 0 (le 1)
  EXPECT_EQ(h.ExemplarTraceId(0), 0xaaaau);
  // An unsampled observation (exemplar id 0) counts but leaves the
  // exemplar alone.
  h.Observe(1);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.ExemplarTraceId(0), 0xaaaau);
  // A later sampled observation in the same bucket wins.
  h.Observe(1, 0xbbbb);
  EXPECT_EQ(h.ExemplarTraceId(0), 0xbbbbu);
  // Different buckets hold independent exemplars; the overflow bucket too.
  h.Observe(3, 0xcccc);
  h.Observe(99'999'999, 0xdddd);
  EXPECT_EQ(h.ExemplarTraceId(0), 0xbbbbu);
  EXPECT_NE(h.ExemplarTraceId(Histogram::kBuckets - 1), 0u);
  EXPECT_EQ(h.ExemplarTraceId(Histogram::kBuckets - 1), 0xddddu);
}

// ---- shared percentile estimation --------------------------------------------

TEST(MetricsTest, HistogramPercentileEmptyAndClamping) {
  std::vector<std::uint64_t> empty(Histogram::kBuckets, 0);
  EXPECT_EQ(HistogramPercentile(empty, 0.5), 0u);
  std::vector<std::uint64_t> one(Histogram::kBuckets, 0);
  one[3] = 10;  // all mass in the le-10 bucket (bounds 1,2,5,10,...)
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_LE(HistogramPercentile(one, -0.5), 10u);
  EXPECT_LE(HistogramPercentile(one, 1.5), 10u);
  EXPECT_GT(HistogramPercentile(one, 1.5), 0u);
  // A short span (fewer buckets than the histogram) is zero-padded.
  std::vector<std::uint64_t> shorter{0, 4};
  EXPECT_LE(HistogramPercentile(shorter, 0.5), 2u);
}

TEST(MetricsTest, HistogramPercentileInterpolatesAndFloorsOverflow) {
  std::vector<std::uint64_t> buckets(Histogram::kBuckets, 0);
  buckets[0] = 50;  // le 1
  buckets[1] = 50;  // le 2
  // p50 sits at the edge of the first bucket, p99 inside the second.
  EXPECT_LE(HistogramPercentile(buckets, 0.50), 1u);
  const std::uint64_t p99 = HistogramPercentile(buckets, 0.99);
  EXPECT_GE(p99, 1u);
  EXPECT_LE(p99, 2u);
  // Mass in the overflow bucket floors at the largest finite bound.
  std::vector<std::uint64_t> over(Histogram::kBuckets, 0);
  over[Histogram::kBuckets - 1] = 10;
  EXPECT_EQ(HistogramPercentile(over, 0.99),
            Histogram::BucketBounds().back());
}

TEST(MetricsTest, HistogramPercentileMemberMatchesFreeFunction) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 5u, 10u, 100u, 1000u}) h.Observe(v);
  std::vector<std::uint64_t> buckets(Histogram::kBuckets, 0);
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    buckets[i] = h.BucketCount(i);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(h.Percentile(q), HistogramPercentile(buckets, q)) << q;
  }
}

// ---- trace sampling -----------------------------------------------------------

TEST(TraceTest, SampleRateBoundaries) {
  const double original = TraceSampleRate();
  // Rate 1 (the default): everything sampled, untraced id 0 included.
  SetTraceSampleRate(1.0);
  EXPECT_TRUE(TraceSampled(0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(TraceSampled(NextTraceId()));
  // Rate 0: nothing sampled.
  SetTraceSampleRate(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(TraceSampled(NextTraceId()));
  // Out-of-range rates clamp.
  SetTraceSampleRate(7.0);
  EXPECT_EQ(TraceSampleRate(), 1.0);
  SetTraceSampleRate(-3.0);
  EXPECT_EQ(TraceSampleRate(), 0.0);
  SetTraceSampleRate(original);
}

TEST(TraceTest, MidRateSamplingIsDeterministicAndProportional) {
  const double original = TraceSampleRate();
  SetTraceSampleRate(0.5);
  int sampled = 0;
  std::vector<std::uint64_t> kept;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t id = NextTraceId();
    if (TraceSampled(id)) {
      ++sampled;
      kept.push_back(id);
    }
  }
  // The verdict is a pure function of the id: every hop in every process
  // agrees, so re-asking must never flip (no per-call randomness).
  for (std::uint64_t id : kept) EXPECT_TRUE(TraceSampled(id));
  // Proportionality with generous slack (ids are hash-uniform).
  EXPECT_GT(sampled, 4000 / 2 - 400);
  EXPECT_LT(sampled, 4000 / 2 + 400);
  SetTraceSampleRate(original);
}

TEST(TraceTest, NextTraceIdIsNonZeroAndDistinct) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);

  // Distinct across threads too (different thread-local generators).
  std::uint64_t other = 0;
  std::thread t([&] { other = NextTraceId(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_FALSE(ids.contains(other));
}

// ---- configuration knobs ------------------------------------------------------

TEST(LogTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST(TraceTest, SlowOpThresholdOverride) {
  const auto original = SlowOpThreshold();
  SetSlowOpThreshold(5ms);
  EXPECT_EQ(SlowOpThreshold(), 5ms);
  SetSlowOpThreshold(original);
  EXPECT_EQ(SlowOpThreshold(), original);
}

}  // namespace
}  // namespace dmemo
