// Tests for the observability layer: the metrics registry (counters, gauges,
// histograms, snapshots, text exposition), the trace ring, trace-id
// generation, and the log-level / slow-op configuration knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

// ---- counters -----------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, SameNameAndLabelsYieldSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup_total", "k=\"v\"");
  Counter* b = registry.GetCounter("dup_total", "k=\"v\"");
  Counter* c = registry.GetCounter("dup_total", "k=\"w\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Add(2);
  EXPECT_EQ(b->Value(), 2u);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

// ---- histograms ---------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_latency_us");
  const auto& bounds = Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), Histogram::kBounds);
  ASSERT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));

  // `le` bounds are inclusive: a value equal to a bound lands in that bucket.
  h->Observe(0);          // <= 1 -> bucket 0
  h->Observe(1);          // == bounds[0] -> bucket 0
  h->Observe(2);          // == bounds[1] -> bucket 1
  h->Observe(3);          // <= 5 -> bucket 2
  h->Observe(bounds.back());      // last finite bucket
  h->Observe(bounds.back() + 1);  // overflow bucket

  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(Histogram::kBounds - 1), 1u);
  EXPECT_EQ(h->BucketCount(Histogram::kBounds), 1u);  // overflow
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_EQ(h->Sum(), 0u + 1 + 2 + 3 + bounds.back() + bounds.back() + 1);
}

TEST(MetricsTest, HistogramConcurrentObserve) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_conc_latency_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<std::uint64_t>(i % 2000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- snapshots & exposition ---------------------------------------------------

TEST(MetricsTest, SnapshotIsSortedAndConsistent) {
  MetricsRegistry registry;
  registry.GetCounter("b_total")->Add(5);
  registry.GetGauge("a_depth")->Set(-4);
  Histogram* h = registry.GetHistogram("c_latency_us", "op=\"put\"");
  h->Observe(3);
  h->Observe(7);

  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_depth");
  EXPECT_EQ(samples[1].name, "b_total");
  EXPECT_EQ(samples[2].name, "c_latency_us");

  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[0].value, -4);
  EXPECT_EQ(samples[1].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[1].value, 5);

  const MetricSample& hist = samples[2];
  EXPECT_EQ(hist.kind, MetricKind::kHistogram);
  EXPECT_EQ(hist.labels, "op=\"put\"");
  ASSERT_EQ(hist.buckets.size(), Histogram::kBuckets);
  // Per-snapshot consistency: the reported count is derived from the same
  // bucket reads it ships, so they always agree.
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : hist.buckets) bucket_sum += b;
  EXPECT_EQ(hist.count, bucket_sum);
  EXPECT_EQ(hist.count, 2u);
  EXPECT_EQ(hist.sum, 10u);
}

TEST(MetricsTest, TextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", "host=\"a\"")->Add(3);
  registry.GetGauge("depth")->Set(2);
  Histogram* h = registry.GetHistogram("lat_us");
  h->Observe(1);
  h->Observe(100);

  std::string text;
  registry.WriteText(text);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{host=\"a\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  // Cumulative buckets: le="1" holds 1 observation, le="100" both.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 101"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 2"), std::string::npos);
}

TEST(MetricsTest, SnapshotWhileWritersRun) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("racy_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counter->Increment();
  });
  for (int i = 0; i < 100; ++i) {
    auto samples = registry.Snapshot();
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_GE(samples[0].value, 0);
  }
  stop.store(true);
  writer.join();
  // Monotone across snapshots: the final value covers everything written.
  EXPECT_EQ(static_cast<std::uint64_t>(registry.Snapshot()[0].value),
            counter->Value());
}

// ---- trace ring ---------------------------------------------------------------

SpanRecord Span(std::uint64_t id) {
  SpanRecord s;
  s.trace_id = id;
  s.component = "test";
  s.op = "put";
  return s;
}

TEST(TraceRingTest, WrapsOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) ring.Record(Span(i));
  EXPECT_EQ(ring.TotalRecorded(), 6u);
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().trace_id, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(spans.back().trace_id, 6u);
}

TEST(TraceRingTest, SnapshotBeforeWrap) {
  TraceRing ring(8);
  ring.Record(Span(11));
  ring.Record(Span(12));
  auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 11u);
  EXPECT_EQ(spans[1].trace_id, 12u);
}

TEST(TraceTest, NextTraceIdIsNonZeroAndDistinct) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);

  // Distinct across threads too (different thread-local generators).
  std::uint64_t other = 0;
  std::thread t([&] { other = NextTraceId(); });
  t.join();
  EXPECT_NE(other, 0u);
  EXPECT_FALSE(ids.contains(other));
}

// ---- configuration knobs ------------------------------------------------------

TEST(LogTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
}

TEST(TraceTest, SlowOpThresholdOverride) {
  const auto original = SlowOpThreshold();
  SetSlowOpThreshold(5ms);
  EXPECT_EQ(SlowOpThreshold(), 5ms);
  SetSlowOpThreshold(original);
  EXPECT_EQ(SlowOpThreshold(), original);
}

}  // namespace
}  // namespace dmemo
