// Dynamic data migration (paper abstract: "Dynamic data migration across
// HC machines"): when an application re-registers with a changed
// folder-server placement, memos already in the space move to their new
// owners and stay reachable.
#include <gtest/gtest.h>

#include <set>

#include "runtime/cluster.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

TEST(MigrationTest, MemosFollowFolderServersAcrossMachines) {
  // v1: all folders on hostA. v2: all folders on hostB. Every memo written
  // under v1 must be retrievable after the v2 re-registration.
  auto cluster = Cluster::Start(Adf(
      "APP mig\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\nPPC\nhostA <-> hostB 1\n"));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  Memo memo = *(*cluster)->Client("hostA", MachineProfile::Universal());
  constexpr std::uint32_t kKeys = 24;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(memo.put(Key::Named("data", {i}),
                         MakeInt32(static_cast<int>(i)))
                    .ok());
  }

  ASSERT_TRUE((*cluster)
                  ->RegisterApp(Adf(
                      "APP mig\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
                      "FOLDERS\n0 hostB\nPPC\nhostA <-> hostB 1\n"))
                  .ok());

  // All folders now hash to hostB's server; the old memos moved with them.
  std::uint64_t on_b = 0;
  for (int id : (*cluster)->server("hostB").folder_server_ids()) {
    on_b += (*cluster)->server("hostB").folder_server(id)
                ->directory_stats().puts;
  }
  EXPECT_GE(on_b, kKeys);  // the migrated deposits landed on hostB

  for (std::uint32_t i = 0; i < kKeys; ++i) {
    auto v = memo.get(Key::Named("data", {i}));
    ASSERT_TRUE(v.ok()) << "key " << i << ": " << v.status();
    EXPECT_EQ(IntOf(*v), static_cast<int>(i));
  }
}

TEST(MigrationTest, PlacementGrowthRebalancesExistingMemos) {
  // Growing from one to four folder servers across two machines: the
  // rendezvous hash moves ~their share of existing folders; every memo
  // stays reachable wherever it landed.
  auto cluster = Cluster::Start(Adf(
      "APP grow\nHOSTS\nhostA 1 t 1\nhostB 3 t 1\n"
      "FOLDERS\n0 hostA\nPPC\nhostA <-> hostB 1\n"));
  ASSERT_TRUE(cluster.ok());
  Memo memo = *(*cluster)->Client("hostA", MachineProfile::Universal());
  constexpr std::uint32_t kKeys = 48;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(memo.put(Key::Named("k", {i}),
                         MakeInt32(static_cast<int>(100 + i)))
                    .ok());
  }
  ASSERT_TRUE((*cluster)
                  ->RegisterApp(Adf(
                      "APP grow\nHOSTS\nhostA 1 t 1\nhostB 3 t 1\n"
                      "FOLDERS\n0 hostA\n1 hostB\n2 hostB\n3 hostB\n"
                      "PPC\nhostA <-> hostB 1\n"))
                  .ok());
  // hostB (3 processors, 3 servers) now owns most folders; it must hold a
  // matching share of the migrated memos.
  std::uint64_t served_on_b = 0;
  for (int id : (*cluster)->server("hostB").folder_server_ids()) {
    served_on_b += (*cluster)->server("hostB").folder_server(id)
                       ->directory_stats().puts;
  }
  EXPECT_GT(served_on_b, kKeys / 2);
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    auto v = memo.get(Key::Named("k", {i}));
    ASSERT_TRUE(v.ok()) << "key " << i;
    EXPECT_EQ(IntOf(*v), static_cast<int>(100 + i));
  }
}

TEST(MigrationTest, IdempotentWhenNothingMoves) {
  auto cluster = Cluster::Start(Adf(
      "APP same\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  ASSERT_TRUE(cluster.ok());
  Memo memo = *(*cluster)->Client("hostA", MachineProfile::Universal());
  ASSERT_TRUE(memo.put(Key::Named("stay"), MakeInt32(1)).ok());
  // Re-registering the identical ADF must not duplicate or lose memos.
  ASSERT_TRUE((*cluster)
                  ->RegisterApp(Adf(
                      "APP same\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"))
                  .ok());
  EXPECT_EQ(*memo.count(Key::Named("stay")), 1u);
  EXPECT_EQ(IntOf(*memo.get(Key::Named("stay"))), 1);
}

TEST(MigrationTest, MultipleMemosPerFolderAllMigrate) {
  auto cluster = Cluster::Start(Adf(
      "APP multi\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\nPPC\nhostA <-> hostB 1\n"));
  ASSERT_TRUE(cluster.ok());
  Memo memo = *(*cluster)->Client("hostA", MachineProfile::Universal());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(memo.put(Key::Named("pile"), MakeInt32(i)).ok());
  }
  ASSERT_TRUE((*cluster)
                  ->RegisterApp(Adf(
                      "APP multi\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
                      "FOLDERS\n0 hostB\nPPC\nhostA <-> hostB 1\n"))
                  .ok());
  EXPECT_EQ(*memo.count(Key::Named("pile")), 5u);
  std::set<int> seen;
  for (int i = 0; i < 5; ++i) {
    auto v = memo.get(Key::Named("pile"));
    ASSERT_TRUE(v.ok());
    seen.insert(IntOf(*v));
  }
  EXPECT_EQ(seen.size(), 5u);  // no duplicates, no losses
}

}  // namespace
}  // namespace dmemo
