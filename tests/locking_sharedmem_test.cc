// Tests for the locking foundation (Sec. 3.1.4) and the shared-memory
// foundation (Sec. 3 / 3.1.2) with its region allocator.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "locking/lock.h"
#include "locking/lock_order.h"
#include "sharedmem/region_allocator.h"
#include "sharedmem/shared_memory.h"
#include "util/mutex.h"

namespace dmemo {
namespace {

// ---- locks: one parameterized suite over every mechanism --------------------

struct LockCase {
  LockKind kind;
  const char* label;
};

class LockTest : public ::testing::TestWithParam<LockCase> {
 protected:
  std::unique_ptr<Lock> Make() {
    std::string path;
    if (GetParam().kind == LockKind::kFile) {
      path = "/tmp/dmemo_lock_test_" + std::to_string(::getpid());
    }
    auto lock = MakeLock(GetParam().kind, path);
    EXPECT_TRUE(lock.ok()) << lock.status();
    return std::move(*lock);
  }
};

TEST_P(LockTest, AcquireRelease) {
  auto lock = Make();
  lock->Acquire();
  lock->Release();
  lock->Acquire();
  lock->Release();
}

TEST_P(LockTest, TryAcquireSucceedsWhenFree) {
  auto lock = Make();
  EXPECT_TRUE(lock->TryAcquire());
  lock->Release();
}

TEST_P(LockTest, MutualExclusionUnderContention) {
  if (GetParam().kind == LockKind::kFile) {
    // flock is per-open-file-description: within one process a second
    // flock on the same fd succeeds, so intra-process contention does not
    // apply. Its cross-process behaviour is what the launcher relies on.
    GTEST_SKIP();
  }
  auto lock = Make();
  int counter = 0;  // deliberately unsynchronized except via the lock
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ScopedLock guard(*lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 20000);
}

TEST_P(LockTest, MechanismLabel) {
  auto lock = Make();
  EXPECT_EQ(lock->mechanism(), GetParam().label);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, LockTest,
    ::testing::Values(LockCase{LockKind::kSpin, "spin"},
                      LockCase{LockKind::kMutex, "mutex"},
                      LockCase{LockKind::kSemaphore, "semaphore"},
                      LockCase{LockKind::kFile, "file"}),
    [](const auto& info) { return info.param.label; });

TEST_P(LockTest, AdoptedScopedLockReleasesOnExit) {
  auto lock = Make();
  ASSERT_TRUE(lock->TryAcquire());
  {
    ScopedLock guard(*lock, std::adopt_lock);  // takes over the held lock
  }
  // The adopting guard released it; a fresh TryAcquire must succeed.
  ASSERT_TRUE(lock->TryAcquire());
  lock->Release();
}

TEST_P(LockTest, TryScopedLockHoldsOnlyOnSuccess) {
  if (GetParam().kind == LockKind::kFile) {
    GTEST_SKIP();  // flock: no intra-process contention (see above)
  }
  auto lock = Make();
  {
    TryScopedLock guard(*lock);
    ASSERT_TRUE(guard.held());
    EXPECT_TRUE(static_cast<bool>(guard));
    // Contended attempt from another thread fails and must NOT release the
    // lock it never got.
    std::thread([&] {
      TryScopedLock inner(*lock);
      EXPECT_FALSE(inner.held());
    }).join();
    // Still held by the outer guard.
    std::thread([&] { EXPECT_FALSE(lock->TryAcquire()); }).join();
  }
  // Outer guard released at scope exit.
  EXPECT_TRUE(lock->TryAcquire());
  lock->Release();
}

TEST(LockFactoryTest, FileLockRequiresPath) {
  EXPECT_EQ(MakeLock(LockKind::kFile).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- lock-order detector (debug builds) -------------------------------------

#ifdef DMEMO_LOCK_ORDER_CHECKS

using LockOrderDeathTest = ::testing::Test;

// Acquiring A→B and then B→A must abort with an inversion report naming
// the cycle. Both orders run inside the death statement: EXPECT_DEATH forks,
// and the child must build the A→B edge itself rather than inherit one
// recorded by the parent.
TEST(LockOrderDeathTest, AbortsOnTwoLockInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a("order_test::a");
        Mutex b("order_test::b");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // inverts the recorded a→b order
        }
      },
      "lock-order inversion");
}

// Same inversion through the abstract Lock hierarchy: the NVI choke point
// must instrument every mechanism, not just dmemo::Mutex.
TEST(LockOrderDeathTest, AbortsOnAbstractLockInversion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto a = MakeLock(LockKind::kSpin);
        auto b = MakeLock(LockKind::kMutex);
        (*a)->set_debug_name("spin_a");
        (*b)->set_debug_name("mutex_b");
        {
          ScopedLock la(**a);
          ScopedLock lb(**b);
        }
        {
          ScopedLock lb(**b);
          ScopedLock la(**a);
        }
      },
      "lock-order inversion");
}

// Recursive acquisition of a non-recursive lock is a self-deadlock; the
// detector reports it instead of hanging.
TEST(LockOrderDeathTest, AbortsOnRecursiveAcquire) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m("order_test::recursive");
        m.Lock();
        m.Lock();
      },
      "");
}

// Consistent ordering in both scopes must stay silent.
TEST(LockOrderTest, ConsistentOrderIsSilent) {
  Mutex a("order_ok::a");
  Mutex b("order_ok::b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_GT(lock_order::GetStats().acquisitions, 0u);
}

#else

TEST(LockOrderTest, DetectorCompiledOut) {
  GTEST_SKIP() << "DMEMO_LOCK_ORDER_CHECKS off in this build";
}

#endif  // DMEMO_LOCK_ORDER_CHECKS

// ---- counting semaphore ------------------------------------------------------

TEST(SemaphoreTest, CountsDownAndUp) {
  CountingSemaphore sem(2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_EQ(sem.value(), 0);
}

TEST(SemaphoreTest, AcquireBlocksUntilRelease) {
  CountingSemaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    sem.Acquire();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  sem.Release();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SemaphoreTest, BoundsConcurrency) {
  CountingSemaphore sem(3);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 10; ++t) {
    threads.emplace_back([&] {
      sem.Acquire();
      int cur = inside.fetch_add(1) + 1;
      int expect = peak.load();
      while (cur > expect && !peak.compare_exchange_weak(expect, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      inside.fetch_sub(1);
      sem.Release();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 3);
}

// ---- region allocator ----------------------------------------------------------

class RegionAllocatorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kSize = 64 * 1024;
  void SetUp() override {
    region_.resize(kSize);
    auto alloc = RegionAllocator::Create(region_.data(), kSize);
    ASSERT_TRUE(alloc.ok()) << alloc.status();
    alloc_.emplace(*alloc);
  }
  std::vector<char> region_;
  std::optional<RegionAllocator> alloc_;
};

TEST_F(RegionAllocatorTest, AllocateWriteFree) {
  auto off = alloc_->Allocate(100);
  ASSERT_TRUE(off.ok());
  std::memset(alloc_->At(*off), 0xaa, 100);
  EXPECT_GT(alloc_->used(), 0u);
  ASSERT_TRUE(alloc_->Free(*off).ok());
  EXPECT_EQ(alloc_->used(), 0u);
}

TEST_F(RegionAllocatorTest, DistinctNonOverlappingBlocks) {
  auto a = alloc_->Allocate(64);
  auto b = alloc_->Allocate(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  // Write patterns; neither clobbers the other.
  std::memset(alloc_->At(*a), 0x11, 64);
  std::memset(alloc_->At(*b), 0x22, 64);
  EXPECT_EQ(static_cast<unsigned char*>(alloc_->At(*a))[63], 0x11);
  EXPECT_EQ(static_cast<unsigned char*>(alloc_->At(*b))[0], 0x22);
}

TEST_F(RegionAllocatorTest, AlignmentIs16) {
  for (int i = 0; i < 8; ++i) {
    auto off = alloc_->Allocate(3);
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(*off % 16, 0u);
  }
}

TEST_F(RegionAllocatorTest, ExhaustionIsResourceExhausted) {
  auto off = alloc_->Allocate(kSize * 2);
  EXPECT_EQ(off.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RegionAllocatorTest, CoalescingAllowsBigReallocation) {
  // Fill with many small blocks, free all, then allocate one huge block:
  // only works if free neighbours coalesced back into one region.
  std::vector<std::size_t> offsets;
  for (;;) {
    auto off = alloc_->Allocate(1000);
    if (!off.ok()) break;
    offsets.push_back(*off);
  }
  EXPECT_GT(offsets.size(), 30u);
  for (std::size_t off : offsets) {
    ASSERT_TRUE(alloc_->Free(off).ok());
  }
  EXPECT_EQ(alloc_->FreeBlockCount(), 1u);
  auto big = alloc_->Allocate(kSize / 2);
  EXPECT_TRUE(big.ok()) << big.status();
}

TEST_F(RegionAllocatorTest, FreeOutOfRangeRejected) {
  EXPECT_EQ(alloc_->Free(kSize + 100).code(), StatusCode::kInvalidArgument);
}

TEST_F(RegionAllocatorTest, OpenAdoptsExistingHeap) {
  auto off = alloc_->Allocate(32);
  ASSERT_TRUE(off.ok());
  std::memcpy(alloc_->At(*off), "persisted", 10);
  auto reopened = RegionAllocator::Open(region_.data(), kSize);
  ASSERT_TRUE(reopened.ok());
  EXPECT_STREQ(static_cast<char*>(reopened->At(*off)), "persisted");
  EXPECT_EQ(reopened->used(), alloc_->used());
}

TEST_F(RegionAllocatorTest, OpenRejectsGarbage) {
  std::vector<char> junk(kSize, 0x5a);
  EXPECT_EQ(RegionAllocator::Open(junk.data(), kSize).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RegionAllocatorLimits, TooSmallRegionRejected) {
  char tiny[32];
  EXPECT_EQ(RegionAllocator::Create(tiny, sizeof(tiny)).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- SharedMemory derivations: same contract, three mechanisms ------------------

struct ShmCase {
  SharedMemoryKind kind;
  const char* label;
};

class SharedMemoryTest : public ::testing::TestWithParam<ShmCase> {
 protected:
  std::unique_ptr<SharedMemory> Make() {
    auto shm = MakeSharedMemory(
        GetParam().kind,
        "dmemo_test_" + std::string(GetParam().label) + "_" +
            std::to_string(::getpid()));
    EXPECT_TRUE(shm.ok()) << shm.status();
    return std::move(*shm);
  }
};

TEST_P(SharedMemoryTest, AttachAllocateFreeDetach) {
  auto shm = Make();
  ASSERT_TRUE(shm->Attach(256 * 1024).ok());
  EXPECT_EQ(shm->mechanism(), GetParam().label);
  EXPECT_EQ(shm->capacity(), 256 * 1024u);

  auto off = shm->Allocate(512);
  ASSERT_TRUE(off.ok()) << off.status();
  std::memset(shm->At(*off), 0x7e, 512);
  EXPECT_GT(shm->used(), 0u);
  ASSERT_TRUE(shm->Free(*off).ok());
  EXPECT_EQ(shm->used(), 0u);
  ASSERT_TRUE(shm->Detach().ok());
  ASSERT_TRUE(shm->Detach().ok());  // idempotent
}

TEST_P(SharedMemoryTest, AllocateBeforeAttachFails) {
  auto shm = Make();
  EXPECT_EQ(shm->Allocate(16).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(SharedMemoryTest, DoubleAttachFails) {
  auto shm = Make();
  ASSERT_TRUE(shm->Attach(64 * 1024).ok());
  EXPECT_EQ(shm->Attach(64 * 1024).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(shm->Detach().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, SharedMemoryTest,
    ::testing::Values(ShmCase{SharedMemoryKind::kInProc, "inproc"},
                      ShmCase{SharedMemoryKind::kPosix, "posix"},
                      ShmCase{SharedMemoryKind::kSysV, "sysv"}),
    [](const auto& info) { return info.param.label; });

TEST(SharedMemoryCrossAttach, PosixSegmentsShareContent) {
  const std::string name =
      "dmemo_xattach_" + std::to_string(::getpid());
  auto a = MakeSharedMemory(SharedMemoryKind::kPosix, name);
  auto b = MakeSharedMemory(SharedMemoryKind::kPosix, name);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Attach(128 * 1024).ok());
  ASSERT_TRUE((*b)->Attach(128 * 1024).ok());

  // Allocate through `a`, observe bytes through `b`: one heap, two views —
  // the Figure-1 shared-memory path between co-located servers.
  auto off = (*a)->Allocate(64);
  ASSERT_TRUE(off.ok());
  std::memcpy((*a)->At(*off), "through-the-wall", 17);
  EXPECT_STREQ(static_cast<char*>((*b)->At(*off)), "through-the-wall");
  EXPECT_EQ((*b)->used(), (*a)->used());

  ASSERT_TRUE((*b)->Detach().ok());
  ASSERT_TRUE((*a)->Detach().ok());
}

TEST(SharedMemoryFactory, NamedKindsRequireName) {
  EXPECT_EQ(MakeSharedMemory(SharedMemoryKind::kPosix).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeSharedMemory(SharedMemoryKind::kSysV).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dmemo
