// Tests for the two Sec.-7 comparators: the Linda tuple space (structural
// matching, in/rd/out) and the PVM-style message-passing virtual machine.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/linda.h"
#include "baselines/pvm.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;
namespace li = dmemo::linda;

// ---- linda matching ----------------------------------------------------------

TEST(LindaMatchTest, ActualsMustEqual) {
  li::Tuple t{li::Value(std::int64_t{5}), li::Value(std::string("x"))};
  EXPECT_TRUE(li::Matches({li::V(std::int64_t{5}), li::V("x")}, t));
  EXPECT_FALSE(li::Matches({li::V(std::int64_t{6}), li::V("x")}, t));
}

TEST(LindaMatchTest, FormalsMatchByType) {
  li::Tuple t{li::Value(std::string("task")), li::Value(std::int64_t{3}),
              li::Value(2.5)};
  EXPECT_TRUE(li::Matches({li::V("task"), li::FInt(), li::FFloat()}, t));
  EXPECT_FALSE(li::Matches({li::V("task"), li::FFloat(), li::FFloat()}, t));
  EXPECT_FALSE(li::Matches({li::V("task"), li::FString(), li::FFloat()}, t));
}

TEST(LindaMatchTest, ArityMustAgree) {
  li::Tuple t{li::Value(std::int64_t{1})};
  EXPECT_FALSE(li::Matches({li::V(std::int64_t{1}), li::FInt()}, t));
  EXPECT_FALSE(li::Matches({}, t));
}

// Both space variants satisfy the same semantic contract.
class TupleSpaceTest : public ::testing::TestWithParam<bool> {
 protected:
  li::TupleSpace space_{GetParam()};
};

TEST_P(TupleSpaceTest, OutInRoundTrip) {
  ASSERT_TRUE(space_.Out({li::Value(std::string("job")),
                          li::Value(std::int64_t{7})})
                  .ok());
  auto t = space_.In({li::V("job"), li::FInt()});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(std::get<std::int64_t>((*t)[1]), 7);
  EXPECT_EQ(space_.size(), 0u);
}

TEST_P(TupleSpaceTest, RdDoesNotConsume) {
  ASSERT_TRUE(space_.Out({li::Value(std::string("cfg"))}).ok());
  ASSERT_TRUE(space_.Rd({li::V("cfg")}).ok());
  ASSERT_TRUE(space_.Rd({li::V("cfg")}).ok());
  EXPECT_EQ(space_.size(), 1u);
}

TEST_P(TupleSpaceTest, InpAndRdpNonBlocking) {
  auto none = space_.Inp({li::V("missing")});
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  ASSERT_TRUE(space_.Out({li::Value(std::string("x"))}).ok());
  auto peek = space_.Rdp({li::V("x")});
  ASSERT_TRUE(peek.ok());
  EXPECT_TRUE(peek->has_value());
  auto take = space_.Inp({li::V("x")});
  ASSERT_TRUE(take.ok());
  EXPECT_TRUE(take->has_value());
  EXPECT_EQ(space_.size(), 0u);
}

TEST_P(TupleSpaceTest, InBlocksUntilMatchingOut) {
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto t = space_.In({li::V("await"), li::FInt()});
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(std::get<std::int64_t>((*t)[1]), 42);
    got = true;
  });
  std::this_thread::sleep_for(20ms);
  // A non-matching tuple must not wake the right consumer successfully.
  ASSERT_TRUE(space_.Out({li::Value(std::string("other"))}).ok());
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(space_.Out({li::Value(std::string("await")),
                          li::Value(std::int64_t{42})})
                  .ok());
  consumer.join();
}

TEST_P(TupleSpaceTest, CloseCancelsBlockedIn) {
  std::thread consumer([&] {
    auto t = space_.In({li::V("never")});
    EXPECT_EQ(t.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(20ms);
  space_.Close();
  consumer.join();
}

TEST_P(TupleSpaceTest, ManyProducersConsumers) {
  constexpr int kEach = 300;
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> sum{0};
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(space_
                        .Out({li::Value(std::string("w")),
                              li::Value(std::int64_t{p * kEach + i})})
                        .ok());
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) {
        auto t = space_.In({li::V("w"), li::FInt()});
        ASSERT_TRUE(t.ok());
        sum.fetch_add(std::get<std::int64_t>((*t)[1]));
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::int64_t n = 3 * kEach;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(space_.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(NaiveAndIndexed, TupleSpaceTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "indexed" : "naive";
                         });

TEST(TupleSpaceCostTest, IndexSkipsNonMatchingTuples) {
  // The E9 mechanism in miniature: with 1000 distractor tuples, the naive
  // space scans them; the indexed space jumps to the right bucket.
  li::TupleSpace naive(false);
  li::TupleSpace indexed(true);
  for (std::int64_t i = 0; i < 1000; ++i) {
    li::Tuple distractor{li::Value(std::string("other") + std::to_string(i)),
                         li::Value(i)};
    ASSERT_TRUE(naive.Out(distractor).ok());
    ASSERT_TRUE(indexed.Out(distractor).ok());
  }
  li::Tuple needle{li::Value(std::string("needle")),
                   li::Value(std::int64_t{1})};
  ASSERT_TRUE(naive.Out(needle).ok());
  ASSERT_TRUE(indexed.Out(needle).ok());
  ASSERT_TRUE(naive.In({li::V("needle"), li::FInt()}).ok());
  ASSERT_TRUE(indexed.In({li::V("needle"), li::FInt()}).ok());
  EXPECT_GT(naive.tuples_scanned(), 1000u);
  EXPECT_LT(indexed.tuples_scanned(), 10u);
}

// ---- pvm -----------------------------------------------------------------------

TEST(PvmTest, SendReceive) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  pvm::TaskId b = vm.Enroll();
  ASSERT_TRUE(vm.Send(a, b, 1, Bytes{9}).ok());
  auto msg = vm.Receive(b);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->source, a);
  EXPECT_EQ(msg->tag, 1);
  EXPECT_EQ(msg->body, Bytes{9});
}

TEST(PvmTest, TagFilteringPreservesOtherMessages) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  pvm::TaskId b = vm.Enroll();
  ASSERT_TRUE(vm.Send(a, b, 1, Bytes{1}).ok());
  ASSERT_TRUE(vm.Send(a, b, 2, Bytes{2}).ok());
  auto tagged = vm.Receive(b, 2);  // skip over the tag-1 message
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged->body, Bytes{2});
  auto first = vm.Receive(b, pvm::kAnyTag);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body, Bytes{1});
}

TEST(PvmTest, ReceiveBlocksUntilSend) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  pvm::TaskId b = vm.Enroll();
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    auto msg = vm.Receive(b);
    ASSERT_TRUE(msg.ok());
    got = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(vm.Send(a, b, 0, {}).ok());
  receiver.join();
}

TEST(PvmTest, TryReceiveNonBlocking) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  auto none = vm.TryReceive(a);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(PvmTest, UnknownDestinationRejected) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  EXPECT_EQ(vm.Send(a, 999, 0, {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(vm.Receive(999).status().code(), StatusCode::kNotFound);
}

TEST(PvmTest, MulticastIsUnicastPerDestination) {
  pvm::VirtualMachine vm;
  pvm::TaskId boss = vm.Enroll();
  std::vector<pvm::TaskId> workers;
  for (int i = 0; i < 5; ++i) workers.push_back(vm.Enroll());
  ASSERT_TRUE(vm.Multicast(boss, workers, 7, Bytes{1}).ok());
  EXPECT_EQ(vm.messages_sent(), 5u);
  for (pvm::TaskId w : workers) {
    auto msg = vm.Receive(w, 7);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->source, boss);
  }
}

TEST(PvmTest, CloseCancelsBlockedReceivers) {
  pvm::VirtualMachine vm;
  pvm::TaskId a = vm.Enroll();
  std::thread receiver([&] {
    auto msg = vm.Receive(a);
    EXPECT_EQ(msg.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(20ms);
  vm.Close();
  receiver.join();
}

}  // namespace
}  // namespace dmemo
