// FormationQueue: flush triggers (size / op count / deadline timer /
// urgency), legacy byte-compatibility of single-entry flushes, Close
// draining, and the async call surface built on top of it (out-of-order
// future completion over one channel).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/cluster.h"
#include "server/protocol.h"
#include "server/rpc_formation.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

std::int32_t Int(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

std::unique_ptr<Cluster> StartCluster(const AppDescription& adf) {
  auto cluster = Cluster::Start(adf);
  EXPECT_TRUE(cluster.ok()) << cluster.status();
  return std::move(*cluster);
}

// Captures every frame the queue emits, as flattened bytes.
struct FrameLog {
  std::mutex mu;
  std::vector<Bytes> frames;

  FormationQueue::SendFrameFn Sink() {
    return [this](IoBuf frame) {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(frame.Flatten());
    };
  }
  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return frames.size();
  }
  Bytes Frame(std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return frames.at(i);
  }
  // Waits until at least `n` frames arrived (deadline-timer flushes land on
  // the flusher thread).
  bool WaitForFrames(std::size_t n,
                     std::chrono::milliseconds timeout = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (Count() < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(1ms);
    }
    return true;
  }
};

IoBuf Body(std::size_t len, std::uint8_t fill) {
  return IoBuf::FromBytes(Bytes(len, fill));
}

// Parses a captured frame: returns kind and, for batch frames, the decoded
// entries.
struct ParsedFrame {
  std::uint8_t kind = 0;
  std::uint64_t id = 0;  // single frames: correlation id; batch: entry count
  std::vector<BatchEntry> entries;
};

ParsedFrame Parse(const Bytes& wire) {
  ParsedFrame out;
  IoBuf buf = IoBuf::FromBytes(wire);
  IoBufReader reader(buf);
  auto kind = reader.base().u8();
  auto id = reader.base().u64();
  EXPECT_TRUE(kind.ok() && id.ok());
  out.kind = *kind;
  out.id = *id;
  if (out.kind == kFrameKindBatch) {
    auto entries = DecodeBatchEntries(reader, out.id);
    EXPECT_TRUE(entries.ok()) << entries.status();
    if (entries.ok()) out.entries = std::move(*entries);
  }
  return out;
}

FormationQueue::Options Patient() {
  // Thresholds far away so only the trigger under test can fire.
  FormationQueue::Options opts;
  opts.max_bytes = 1 << 20;
  opts.max_ops = 1 << 20;
  opts.max_delay = 10min;
  return opts;
}

TEST(FormationQueueTest, FlushesExactlyAtOpCountThreshold) {
  FrameLog log;
  FormationQueue::Options opts = Patient();
  opts.max_ops = 4;
  FormationQueue queue(opts, log.Sink());
  for (std::uint64_t i = 0; i < 3; ++i) {
    queue.Enqueue(kFrameKindRequest, i, Body(8, 0x11));
  }
  EXPECT_EQ(log.Count(), 0u) << "flushed below the op-count boundary";
  queue.Enqueue(kFrameKindRequest, 3, Body(8, 0x11));
  ASSERT_EQ(log.Count(), 1u) << "op-count boundary did not flush";
  ParsedFrame frame = Parse(log.Frame(0));
  EXPECT_EQ(frame.kind, kFrameKindBatch);
  ASSERT_EQ(frame.entries.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(frame.entries[i].id, i) << "enqueue order lost in the frame";
  }
  EXPECT_EQ(queue.flushes_size(), 1u);
  EXPECT_EQ(queue.ops_flushed(), 4u);
  queue.Close();
}

TEST(FormationQueueTest, FlushesExactlyAtByteThreshold) {
  FrameLog log;
  FormationQueue::Options opts = Patient();
  opts.max_bytes = 100;
  FormationQueue queue(opts, log.Sink());
  queue.Enqueue(kFrameKindRequest, 1, Body(40, 0x22));
  queue.Enqueue(kFrameKindRequest, 2, Body(40, 0x22));
  EXPECT_EQ(log.Count(), 0u) << "flushed below the byte boundary (80 < 100)";
  queue.Enqueue(kFrameKindRequest, 3, Body(40, 0x22));
  ASSERT_EQ(log.Count(), 1u) << "byte boundary (120 >= 100) did not flush";
  EXPECT_EQ(Parse(log.Frame(0)).entries.size(), 3u);
  EXPECT_EQ(queue.flushes_size(), 1u);
  queue.Close();
}

TEST(FormationQueueTest, DelayTimerFlushesAnUnfilledQueue) {
  FrameLog log;
  FormationQueue::Options opts = Patient();
  opts.max_delay = 5ms;
  FormationQueue queue(opts, log.Sink());
  queue.Enqueue(kFrameKindRequest, 7, Body(8, 0x33));
  queue.Enqueue(kFrameKindResponse, 8, Body(8, 0x44));
  ASSERT_TRUE(log.WaitForFrames(1)) << "delay timer never fired";
  ParsedFrame frame = Parse(log.Frame(0));
  EXPECT_EQ(frame.kind, kFrameKindBatch);
  ASSERT_EQ(frame.entries.size(), 2u);
  EXPECT_EQ(frame.entries[0].kind, kFrameKindRequest);
  EXPECT_EQ(frame.entries[1].kind, kFrameKindResponse);
  EXPECT_EQ(queue.flushes_deadline(), 1u);
  queue.Close();
}

TEST(FormationQueueTest, UrgentMessageFlushesImmediately) {
  FrameLog log;
  FormationQueue queue(Patient(), log.Sink());
  queue.Enqueue(kFrameKindRequest, 1, Body(8, 0x55));
  EXPECT_EQ(log.Count(), 0u);
  queue.Enqueue(kFrameKindRequest, 2, Body(8, 0x66),
                FormationQueue::Urgency::kUrgent);
  ASSERT_EQ(log.Count(), 1u) << "urgent enqueue did not flush inline";
  EXPECT_EQ(Parse(log.Frame(0)).entries.size(), 2u)
      << "urgent flush must carry the coalesced backlog too";
  EXPECT_EQ(queue.flushes_urgent(), 1u);
  queue.Close();
}

TEST(FormationQueueTest, SingleEntryFlushIsByteIdenticalToLegacyFrame) {
  // The interop contract: a flush holding one message emits the exact
  // kind-1 frame an unbatched channel would have sent, so a legacy peer
  // never sees a packed frame unless at least two ops coalesced.
  FrameLog log;
  FormationQueue queue(Patient(), log.Sink());
  Request req;
  req.op = Op::kPut;
  req.app = "legacy";
  req.key = Key::Named("k");
  req.value = Bytes{1, 2, 3, 4};
  const std::uint64_t id = 42;
  queue.Enqueue(kFrameKindRequest, id, req.EncodeToIoBuf(),
                FormationQueue::Urgency::kUrgent);
  ASSERT_EQ(log.Count(), 1u);

  ByteWriter legacy;
  legacy.u8(kFrameKindRequest);
  legacy.u64(id);
  req.EncodeTo(legacy);
  EXPECT_EQ(log.Frame(0), legacy.data())
      << "single-entry flush diverged from the legacy wire frame";
  queue.Close();
}

TEST(FormationQueueTest, CloseFlushesTheRemainder) {
  FrameLog log;
  FormationQueue queue(Patient(), log.Sink());
  queue.Enqueue(kFrameKindRequest, 1, Body(8, 0x77));
  queue.Enqueue(kFrameKindRequest, 2, Body(8, 0x88));
  EXPECT_EQ(log.Count(), 0u);
  queue.Close();
  ASSERT_EQ(log.Count(), 1u) << "Close dropped the queued remainder";
  EXPECT_EQ(Parse(log.Frame(0)).entries.size(), 2u);
  // Idempotent, and post-Close enqueues are dropped (the dying channel's
  // pending-call cleanup owns failing those callers).
  queue.Close();
  queue.Enqueue(kFrameKindRequest, 3, Body(8, 0x99));
  EXPECT_EQ(log.Count(), 1u);
}

TEST(FormationQueueTest, DeadlineUrgencyBoundaries) {
  FrameLog log;
  FormationQueue queue(FormationQueue::Options(), log.Sink());
  EXPECT_FALSE(queue.DeadlineUrgent(0)) << "0 means unbounded, never urgent";
  EXPECT_TRUE(queue.DeadlineUrgent(1));
  EXPECT_TRUE(queue.DeadlineUrgent(5));
  EXPECT_FALSE(queue.DeadlineUrgent(100));
  EXPECT_FALSE(queue.DeadlineUrgent(60'000));
  queue.Close();
}

TEST(FormationQueueTest, EnvKnobsOverrideDefaults) {
  ::setenv("DMEMO_RPC_BATCH_BYTES", "512", 1);
  ::setenv("DMEMO_RPC_BATCH_OPS", "9", 1);
  ::setenv("DMEMO_RPC_BATCH_DELAY_US", "750", 1);
  FormationQueue::Options opts = FormationQueue::Options::FromEnv();
  EXPECT_EQ(opts.max_bytes, 512u);
  EXPECT_EQ(opts.max_ops, 9u);
  EXPECT_EQ(opts.max_delay, 750us);
  ::unsetenv("DMEMO_RPC_BATCH_BYTES");
  ::unsetenv("DMEMO_RPC_BATCH_OPS");
  ::unsetenv("DMEMO_RPC_BATCH_DELAY_US");
}

// ---- the async surface over a live cluster ---------------------------------

TEST(AsyncPipelineTest, FuturesCompleteOutOfOrder) {
  // A get_async parked on an empty folder must not stall ops issued after
  // it: later futures resolve first, the parked one resolves when its value
  // arrives. This is the whole point of multiplexing by correlation id.
  auto cluster = StartCluster(
      Adf("APP async\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());

  auto parked = memo.get_async(Key::Named("empty"));
  auto put_later = memo.put_async(Key::Named("other"), MakeInt32(5));
  ASSERT_EQ(put_later.wait_for(5s), std::future_status::ready)
      << "op issued after a parked get never completed";
  EXPECT_TRUE(put_later.get().ok());
  EXPECT_NE(parked.wait_for(0s), std::future_status::ready)
      << "get on an empty folder resolved without a value";

  ASSERT_TRUE(memo.put(Key::Named("empty"), MakeInt32(11)).ok());
  ASSERT_EQ(parked.wait_for(5s), std::future_status::ready);
  auto v = parked.get();
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(Int(*v), 11);
  cluster->Shutdown();
}

TEST(AsyncPipelineTest, ManyInFlightCallsAllResolve) {
  auto cluster = StartCluster(
      Adf("APP asyncm\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());

  constexpr int kOps = 400;
  std::vector<std::future<Status>> puts;
  puts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    puts.push_back(memo.put_async(Key::Named("flood", {0}), MakeInt32(i)));
  }
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(puts[i].wait_for(10s), std::future_status::ready) << i;
    EXPECT_TRUE(puts[i].get().ok()) << i;
  }
  std::vector<std::future<Result<TransferablePtr>>> gets;
  gets.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    gets.push_back(memo.get_async(Key::Named("flood", {0})));
  }
  std::multiset<std::int32_t> seen;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_EQ(gets[i].wait_for(10s), std::future_status::ready) << i;
    auto v = gets[i].get();
    ASSERT_TRUE(v.ok()) << i << ": " << v.status();
    seen.insert(Int(*v));
  }
  // Every deposited value extracted exactly once through the batched path.
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
  auto leftover = memo.get_skip(Key::Named("flood", {0}));
  ASSERT_TRUE(leftover.ok());
  EXPECT_FALSE(leftover->has_value());
  cluster->Shutdown();
}

TEST(AsyncPipelineTest, ShutdownFailsInFlightFuturesInsteadOfHanging) {
  auto cluster = StartCluster(
      Adf("APP asyncd\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  Memo memo = *cluster->Client("hostA", MachineProfile::Universal());
  auto parked = memo.get_async(Key::Named("never"));
  std::this_thread::sleep_for(20ms);
  cluster->Shutdown();
  ASSERT_EQ(parked.wait_for(5s), std::future_status::ready)
      << "shutdown left an async future hanging";
  EXPECT_FALSE(parked.get().ok());
}

}  // namespace
}  // namespace dmemo
