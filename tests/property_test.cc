// Property-based tests: randomized inputs, invariant checks, seeded TEST_P
// sweeps.
//
//  * codec: random object graphs (sharing + cycles) survive a round trip
//    with structure, node count, and byte-equality preserved;
//  * folder directory: a reference model (multiset per folder) agrees with
//    the real directory under random operation sequences;
//  * routing: selection is a function of the key alone, shares follow
//    weights for random cost vectors, and path costs obey the triangle
//    inequality per Dijkstra;
//  * ADF: format(parse(x)) is a fixpoint under comment/whitespace noise.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adf/adf.h"
#include "folder/directory.h"
#include "routing/routing.h"
#include "server/protocol.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "util/rng.h"

namespace dmemo {
namespace {

// ---- random graph generator ---------------------------------------------------

// Builds a random graph of ~`target` nodes. Later nodes may reference any
// earlier node (sharing) and, with some probability, a *later* slot is
// patched afterwards to point back (cycles).
TransferablePtr RandomGraph(SplitMix64& rng, int target) {
  std::vector<TransferablePtr> nodes;
  std::vector<std::shared_ptr<TRecord>> records;
  std::vector<std::shared_ptr<TList>> lists;
  for (int i = 0; i < target; ++i) {
    switch (rng.NextBelow(6)) {
      case 0:
        nodes.push_back(MakeInt32(static_cast<int>(rng.Next())));
        break;
      case 1:
        nodes.push_back(MakeInt64(static_cast<std::int64_t>(rng.Next())));
        break;
      case 2:
        nodes.push_back(
            MakeString("s" + std::to_string(rng.NextBelow(1000))));
        break;
      case 3:
        nodes.push_back(MakeFloat64(rng.NextUnit()));
        break;
      case 4: {
        auto list = std::make_shared<TList>();
        const std::size_t children = rng.NextBelow(4);
        for (std::size_t c = 0; c < children && !nodes.empty(); ++c) {
          list->Add(nodes[rng.NextBelow(nodes.size())]);
        }
        lists.push_back(list);
        nodes.push_back(list);
        break;
      }
      default: {
        auto rec = std::make_shared<TRecord>();
        const std::size_t fields = rng.NextBelow(3);
        for (std::size_t f = 0; f < fields && !nodes.empty(); ++f) {
          rec->Set("f" + std::to_string(f),
                   nodes[rng.NextBelow(nodes.size())]);
        }
        records.push_back(rec);
        nodes.push_back(rec);
        break;
      }
    }
  }
  // Root: a list holding everything (so all nodes are reachable).
  auto root = std::make_shared<TList>();
  for (const auto& n : nodes) root->Add(n);
  // Back-edges: make some records point at the root (guaranteed cycles).
  for (const auto& rec : records) {
    if (rng.NextBelow(3) == 0) rec->Set("back", root);
  }
  return root;
}

class CodecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecPropertyTest, RandomGraphRoundTripPreservesStructure) {
  SplitMix64 rng(GetParam() * 0x9e37 + 1);
  auto graph = RandomGraph(rng, 60);
  const std::size_t nodes_before = GraphNodeCount(graph);
  Bytes encoded = EncodeGraphToBytes(graph);

  auto decoded = DecodeGraphFromBytes(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(GraphNodeCount(*decoded), nodes_before);

  // Re-encoding the decoded graph must be byte-identical: the encoding is
  // canonical given the traversal order, which decode preserves.
  EXPECT_EQ(EncodeGraphToBytes(*decoded), encoded);

  ReleaseGraph(*decoded);
  ReleaseGraph(graph);
}

TEST_P(CodecPropertyTest, TruncationAnywhereNeverCrashes) {
  SplitMix64 rng(GetParam() * 0x51ed + 7);
  auto graph = RandomGraph(rng, 25);
  Bytes encoded = EncodeGraphToBytes(graph);
  // Cut at a handful of positions including 0 and near the end.
  for (std::size_t cut = 0; cut < encoded.size();
       cut += 1 + encoded.size() / 17) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    auto decoded = DecodeGraphFromBytes(truncated);
    if (decoded.ok()) {
      // Only a cut exactly at a value boundary may decode; release it.
      ReleaseGraph(*decoded);
    }
  }
  ReleaseGraph(graph);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 24));

// ---- directory vs reference model ----------------------------------------------

class DirectoryModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectoryModelTest, RandomOpsAgreeWithModel) {
  SplitMix64 rng(GetParam() * 0xabcd + 3);
  FolderDirectory<Bytes> dir(GetParam());
  // Model: folder -> multiset of values; plus parked delayed puts.
  std::map<std::uint32_t, std::multiset<std::uint8_t>> model;
  std::map<std::uint32_t,
           std::vector<std::pair<std::uint32_t, std::uint8_t>>>
      delayed;
  auto qk = [](std::uint32_t f) {
    return QualifiedKey{"model", Key::Named("f", {f})};
  };

  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t folder = static_cast<std::uint32_t>(rng.NextBelow(8));
    const auto v = static_cast<std::uint8_t>(rng.NextBelow(256));
    switch (rng.NextBelow(5)) {
      case 0:    // put (releases any delayed entries, chains)
      case 1: {
        ASSERT_TRUE(dir.Put(qk(folder), Bytes{v}).ok());
        // Model the chain iteratively, exactly like the directory.
        std::vector<std::pair<std::uint32_t, std::uint8_t>> work{
            {folder, v}};
        while (!work.empty()) {
          auto [f, val] = work.back();
          work.pop_back();
          model[f].insert(val);
          auto parked = std::move(delayed[f]);
          delayed[f].clear();
          for (auto& entry : parked) work.push_back(entry);
        }
        break;
      }
      case 2: {  // get_skip
        auto got = dir.GetSkip(qk(folder));
        ASSERT_TRUE(got.ok());
        if (got->has_value()) {
          const std::uint8_t got_v = (**got)[0];
          auto it = model[folder].find(got_v);
          ASSERT_NE(it, model[folder].end())
              << "directory returned a value the model does not hold";
          model[folder].erase(it);
        } else {
          EXPECT_TRUE(model[folder].empty());
        }
        break;
      }
      case 3: {  // put_delayed
        const std::uint32_t dest =
            static_cast<std::uint32_t>(rng.NextBelow(8));
        ASSERT_TRUE(dir.PutDelayed(qk(folder), qk(dest), Bytes{v}).ok());
        delayed[folder].emplace_back(dest, v);
        break;
      }
      default: {  // count must match the model
        EXPECT_EQ(dir.Count(qk(folder)), model[folder].size());
        break;
      }
    }
  }
  // Final audit: every folder count matches; draining returns exactly the
  // model's contents.
  for (auto& [folder, values] : model) {
    EXPECT_EQ(dir.Count(qk(folder)), values.size()) << "folder " << folder;
    while (!values.empty()) {
      auto got = dir.GetSkip(qk(folder));
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got->has_value());
      auto it = values.find((**got)[0]);
      ASSERT_NE(it, values.end());
      values.erase(it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryModelTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---- routing properties -----------------------------------------------------------

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Random ADF: 3-6 hosts with random powers and random connected topology.
AppDescription RandomAdf(SplitMix64& rng) {
  const int n = 3 + static_cast<int>(rng.NextBelow(4));
  std::string text = "APP rand\nHOSTS\n";
  for (int i = 0; i < n; ++i) {
    const int procs = 1 + static_cast<int>(rng.NextBelow(8));
    const double cost = 0.25 * (1 + static_cast<double>(rng.NextBelow(8)));
    text += "h" + std::to_string(i) + " " + std::to_string(procs) + " t " +
            std::to_string(cost) + "\n";
  }
  text += "FOLDERS\n";
  for (int i = 0; i < n; ++i) {
    text += std::to_string(i) + " h" + std::to_string(i) + "\n";
  }
  text += "PPC\n";
  // Random spanning tree keeps it connected; extra random edges.
  for (int i = 1; i < n; ++i) {
    const int parent = static_cast<int>(rng.NextBelow(
        static_cast<std::uint64_t>(i)));
    text += "h" + std::to_string(parent) + " <-> h" + std::to_string(i) +
            " " + std::to_string(1 + rng.NextBelow(5)) + "\n";
  }
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  return parsed->description;
}

TEST_P(RoutingPropertyTest, SharesTrackWeights) {
  SplitMix64 rng(GetParam() * 0x1357 + 11);
  auto adf = RandomAdf(rng);
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok()) << table.status();
  constexpr int kKeys = 20'000;
  std::map<int, int> hits;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    hits[table->ServerForKey(
                 QualifiedKey{"rand", Key::Named("k", {i})}.ToBytes())
             ->id]++;
  }
  for (std::size_t s = 0; s < table->servers().size(); ++s) {
    const double share =
        static_cast<double>(hits[table->servers()[s].id]) / kKeys;
    EXPECT_NEAR(share, table->server_weights()[s], 0.015)
        << "server " << table->servers()[s].id;
  }
}

TEST_P(RoutingPropertyTest, PathCostsObeyTriangleInequality) {
  SplitMix64 rng(GetParam() * 0x2468 + 5);
  auto adf = RandomAdf(rng);
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  for (const auto& a : adf.hosts) {
    for (const auto& b : adf.hosts) {
      for (const auto& c : adf.hosts) {
        const double ab = *table->PathCost(a.name, b.name);
        const double bc = *table->PathCost(b.name, c.name);
        const double ac = *table->PathCost(a.name, c.name);
        EXPECT_LE(ac, ab + bc + 1e-9)
            << a.name << "->" << c.name << " via " << b.name;
      }
    }
  }
}

TEST_P(RoutingPropertyTest, NextHopChainsReachTheTarget) {
  SplitMix64 rng(GetParam() * 0x8642 + 9);
  auto adf = RandomAdf(rng);
  auto table = RoutingTable::Build(adf);
  ASSERT_TRUE(table.ok());
  for (const auto& from : adf.hosts) {
    for (const auto& to : adf.hosts) {
      std::string cur = from.name;
      int hops = 0;
      while (cur != to.name) {
        auto next = table->NextHop(cur, to.name);
        ASSERT_TRUE(next.ok());
        ASSERT_NE(*next, cur) << "stuck at " << cur;
        cur = *next;
        ASSERT_LE(++hops, static_cast<int>(adf.hosts.size()))
            << "next-hop chain longer than the host count";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// ---- wire protocol fuzz -----------------------------------------------------------

class ProtocolFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzzTest, RandomBytesNeverCrashDecoders) {
  SplitMix64 rng(GetParam() * 0xfeed + 17);
  for (int round = 0; round < 200; ++round) {
    Bytes junk(rng.NextBelow(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    {
      ByteReader r(junk);
      auto req = Request::DecodeFrom(r);
      (void)req;  // any Status is fine; crashing is not
    }
    {
      ByteReader r(junk);
      auto resp = Response::DecodeFrom(r);
      (void)resp;
    }
    {
      auto value = DecodeGraphFromBytes(junk);
      if (value.ok() && *value != nullptr) ReleaseGraph(*value);
    }
    {
      FolderDirectory<Bytes> dir;
      ByteReader r(junk);
      (void)dir.RestoreFrom(r);
    }
  }
  SUCCEED();
}

TEST_P(ProtocolFuzzTest, BitFlippedRequestsNeverCrash) {
  SplitMix64 rng(GetParam() * 0xfade + 23);
  // Start from a valid request, then flip random bits.
  Request req;
  req.op = Op::kPutDelayed;
  req.app = "fuzz";
  req.key = Key::Named("k", {1, 2, 3});
  req.key2 = Key::Named("k2");
  req.alts = {Key::Named("a"), Key::Named("b")};
  req.value = Bytes(32, 0x5a);
  req.text = "APP x";
  ByteWriter w;
  req.EncodeTo(w);
  for (int round = 0; round < 300; ++round) {
    Bytes mutated = w.data();
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    }
    ByteReader r(mutated);
    auto decoded = Request::DecodeFrom(r);
    (void)decoded;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---- zero-copy pipeline wire identity ------------------------------------------

// The IoBuf encode path (header buffer chained to shared payload slices)
// must be byte-identical to the legacy single-buffer encode: zero-copy is
// an implementation property, never a wire-format change.

Key RandomKey(SplitMix64& rng) {
  std::vector<std::uint32_t> subscripts;
  const std::size_t n = rng.NextBelow(4);
  for (std::size_t i = 0; i < n; ++i) {
    subscripts.push_back(static_cast<std::uint32_t>(rng.NextBelow(1000)));
  }
  return Key::Named("k" + std::to_string(rng.NextBelow(50)),
                    std::move(subscripts));
}

// Random payload, randomly single-slice or chunked (multi-slice), so the
// identity holds regardless of how the payload was produced.
IoBuf RandomValue(SplitMix64& rng) {
  const std::size_t len = rng.NextBelow(2000);
  Bytes raw(len);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.Next());
  if (rng.NextBelow(2) == 0) return IoBuf::FromBytes(std::move(raw));
  ByteWriter chunked(64);
  chunked.raw(raw);
  return IoBuf::FromChunks(chunked.TakeChunks());
}

Request RandomRequest(SplitMix64& rng) {
  Request req;
  req.op = static_cast<Op>(1 + rng.NextBelow(16));  // kPut..kGossip
  req.app = "app" + std::to_string(rng.NextBelow(10));
  req.target_host = rng.NextBelow(2) ? "host" + std::to_string(rng.Next() % 8)
                                     : std::string();
  req.hop_count = static_cast<std::uint8_t>(rng.NextBelow(16));
  req.trace_id = rng.Next();
  req.request_id = rng.Next();
  req.deadline_ms = static_cast<std::uint32_t>(rng.Next());
  req.epoch = rng.Next();
  req.key = RandomKey(rng);
  req.key2 = RandomKey(rng);
  const std::size_t alts = rng.NextBelow(4);
  for (std::size_t i = 0; i < alts; ++i) req.alts.push_back(RandomKey(rng));
  req.value = RandomValue(rng);
  if (rng.NextBelow(2)) req.text = "ADF " + std::to_string(rng.Next());
  return req;
}

Response RandomResponse(SplitMix64& rng) {
  Response resp;
  resp.code = rng.NextBelow(2) ? StatusCode::kOk : StatusCode::kNotFound;
  if (rng.NextBelow(2)) resp.message = "m" + std::to_string(rng.Next());
  resp.has_value = rng.NextBelow(2) != 0;
  if (resp.has_value) resp.value = RandomValue(rng);
  resp.has_key = rng.NextBelow(2) != 0;
  if (resp.has_key) resp.key = RandomKey(rng);
  resp.count = rng.Next();
  resp.hop_count = static_cast<std::uint8_t>(rng.NextBelow(16));
  resp.trace_id = rng.Next();
  return resp;
}

class ZeroCopyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZeroCopyPropertyTest, RequestIoBufEncodingIsByteIdentical) {
  SplitMix64 rng(GetParam() * 0xabcd + 7);
  for (int round = 0; round < 50; ++round) {
    Request req = RandomRequest(rng);
    ByteWriter legacy;
    req.EncodeTo(legacy);
    IoBuf zero_copy = req.EncodeToIoBuf();
    ASSERT_TRUE(zero_copy == legacy.data())
        << "round " << round << ": IoBuf encode diverged from legacy";

    // Both decode paths agree with the original.
    IoBufReader reader(zero_copy);
    auto decoded = Request::DecodeFrom(reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->op, req.op);
    EXPECT_EQ(decoded->app, req.app);
    EXPECT_EQ(decoded->target_host, req.target_host);
    EXPECT_EQ(decoded->hop_count, req.hop_count);
    EXPECT_EQ(decoded->trace_id, req.trace_id);
    EXPECT_EQ(decoded->request_id, req.request_id);
    EXPECT_EQ(decoded->deadline_ms, req.deadline_ms);
    EXPECT_EQ(decoded->epoch, req.epoch);
    EXPECT_EQ(decoded->key, req.key);
    EXPECT_EQ(decoded->key2, req.key2);
    EXPECT_EQ(decoded->alts, req.alts);
    EXPECT_TRUE(decoded->value == req.value);
    EXPECT_EQ(decoded->text, req.text);
  }
}

TEST_P(ZeroCopyPropertyTest, ResponseIoBufEncodingIsByteIdentical) {
  SplitMix64 rng(GetParam() * 0x9999 + 3);
  for (int round = 0; round < 50; ++round) {
    Response resp = RandomResponse(rng);
    ByteWriter legacy;
    resp.EncodeTo(legacy);
    IoBuf zero_copy = resp.EncodeToIoBuf();
    ASSERT_TRUE(zero_copy == legacy.data())
        << "round " << round << ": IoBuf encode diverged from legacy";

    IoBufReader reader(zero_copy);
    auto decoded = Response::DecodeFrom(reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->code, resp.code);
    EXPECT_EQ(decoded->message, resp.message);
    EXPECT_EQ(decoded->has_value, resp.has_value);
    EXPECT_TRUE(decoded->value == resp.value);
    EXPECT_EQ(decoded->has_key, resp.has_key);
    if (resp.has_key) {
      EXPECT_EQ(decoded->key, resp.key);
    }
    EXPECT_EQ(decoded->count, resp.count);
    EXPECT_EQ(decoded->hop_count, resp.hop_count);
    EXPECT_EQ(decoded->trace_id, resp.trace_id);
  }
}

TEST_P(ZeroCopyPropertyTest, PatchHeaderLeavesPayloadPointerIdentical) {
  // The relay fast path: decode a received frame, restamp the routing
  // fields, re-encode. The payload slices must still alias the received
  // frame's bytes — pointer-identical, not merely equal — proving the relay
  // never copies the memo payload.
  SplitMix64 rng(GetParam() * 0x5150 + 1);
  for (int round = 0; round < 20; ++round) {
    Request original = RandomRequest(rng);
    if (original.value.empty()) original.value = IoBuf::FromBytes({1, 2, 3});
    IoBuf frame = original.EncodeToIoBuf();
    // Model the receive side: one contiguous buffer, as transports deliver.
    IoBuf received = IoBuf::FromBytes(frame.Flatten());
    const std::uint8_t* frame_base = received.slice(0).data;
    const std::size_t frame_len = received.slice(0).len;

    IoBufReader reader(received);
    auto relayed = Request::DecodeFrom(reader);
    ASSERT_TRUE(relayed.ok()) << relayed.status();
    ASSERT_EQ(relayed->value.slice_count(), 1u);
    const std::uint8_t* payload_before = relayed->value.slice(0).data;
    // The decoded value aliases the received frame.
    ASSERT_GE(payload_before, frame_base);
    ASSERT_LE(payload_before + relayed->value.size(), frame_base + frame_len);

    PatchHeaderInPlace(*relayed, "next-hop",
                       static_cast<std::uint8_t>(relayed->hop_count + 1),
                       relayed->deadline_ms / 2);
    // Pointer-identical: the patch touched routing fields only.
    EXPECT_EQ(relayed->value.slice(0).data, payload_before);
    EXPECT_EQ(relayed->hop_count, original.hop_count + 1);
    EXPECT_EQ(relayed->target_host, "next-hop");

    // Re-encoding for the next hop still references those same bytes.
    IoBuf next_hop_frame = relayed->EncodeToIoBuf();
    bool payload_shared = false;
    for (std::size_t i = 0; i < next_hop_frame.slice_count(); ++i) {
      if (next_hop_frame.slice(i).data == payload_before) {
        payload_shared = true;
      }
    }
    EXPECT_TRUE(payload_shared)
        << "re-encoded frame does not reference the received payload block";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroCopyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---- packed batch frames -------------------------------------------------------

// The rpc-formation wire format (PROTOCOL.md §2.4): a kind-3 frame whose id
// field carries the entry count, each entry a (kind, id, len, body) tuple
// with the body byte-identical to the single-op frame body it replaces.

class BatchFramePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchFramePropertyTest, PackedFrameRoundTripsEveryEntry) {
  SplitMix64 rng(GetParam() * 0x6b8b + 19);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 2 + rng.NextBelow(30);
    std::vector<BatchEntry> entries;
    std::vector<Bytes> expected_bodies;
    std::vector<Op> expected_ops;          // for request entries
    std::vector<StatusCode> expected_codes;  // for response entries
    for (std::size_t i = 0; i < n; ++i) {
      BatchEntry entry;
      entry.id = rng.Next();
      if (rng.NextBelow(2) == 0) {
        Request req = RandomRequest(rng);
        entry.kind = kFrameKindRequest;
        entry.body = req.EncodeToIoBuf();
        expected_ops.push_back(req.op);
        expected_codes.push_back(StatusCode::kOk);
      } else {
        Response resp = RandomResponse(rng);
        entry.kind = kFrameKindResponse;
        entry.body = resp.EncodeToIoBuf();
        expected_ops.push_back(Op::kPing);
        expected_codes.push_back(resp.code);
      }
      expected_bodies.push_back(entry.body.Flatten());
      entries.push_back(std::move(entry));
    }

    IoBuf frame = EncodeBatchFrame(entries);
    // Model the receive side: one contiguous buffer, as transports deliver.
    IoBuf received = IoBuf::FromBytes(frame.Flatten());
    IoBufReader reader(received);
    auto kind = reader.base().u8();
    auto count = reader.base().u64();
    ASSERT_TRUE(kind.ok() && count.ok());
    EXPECT_EQ(*kind, kFrameKindBatch);
    ASSERT_EQ(*count, n);

    auto decoded = DecodeBatchEntries(reader, *count);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ((*decoded)[i].kind, entries[i].kind) << "entry " << i;
      EXPECT_EQ((*decoded)[i].id, entries[i].id) << "entry " << i;
      ASSERT_TRUE((*decoded)[i].body == expected_bodies[i])
          << "entry " << i << ": body bytes diverged through the pack";
      // And each body still decodes as the op it was before packing.
      IoBufReader body_reader((*decoded)[i].body);
      if (entries[i].kind == kFrameKindRequest) {
        auto req = Request::DecodeFrom(body_reader);
        ASSERT_TRUE(req.ok()) << req.status();
        EXPECT_EQ(req->op, expected_ops[i]);
      } else {
        auto resp = Response::DecodeFrom(body_reader);
        ASSERT_TRUE(resp.ok()) << resp.status();
        EXPECT_EQ(resp->code, expected_codes[i]);
      }
    }
    EXPECT_EQ(reader.remaining(), 0u) << "trailing bytes after last entry";
  }
}

TEST_P(BatchFramePropertyTest, TruncatedOrCorruptBatchNeverCrashes) {
  SplitMix64 rng(GetParam() * 0x40cb + 29);
  std::vector<BatchEntry> entries;
  for (std::size_t i = 0; i < 6; ++i) {
    Request req = RandomRequest(rng);
    entries.push_back(
        BatchEntry{kFrameKindRequest, rng.Next(), req.EncodeToIoBuf()});
  }
  const Bytes wire = EncodeBatchFrame(entries).Flatten();
  for (std::size_t cut = 0; cut < wire.size(); cut += 1 + wire.size() / 23) {
    Bytes truncated(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(cut));
    IoBuf received = IoBuf::FromBytes(std::move(truncated));
    IoBufReader reader(received);
    auto kind = reader.base().u8();
    auto count = reader.base().u64();
    if (!kind.ok() || !count.ok()) continue;
    (void)DecodeBatchEntries(reader, *count);  // any Status; crashing is not
  }
  // A declared count far beyond the payload must fail cleanly, not allocate.
  IoBuf received = IoBuf::FromBytes(Bytes(wire.begin() + 9, wire.end()));
  IoBufReader reader(received);
  auto huge = DecodeBatchEntries(reader, 1u << 20);
  EXPECT_FALSE(huge.ok());
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchFramePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---- ADF formatting fixpoint ---------------------------------------------------

class AdfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdfPropertyTest, FormatIsAFixpointUnderNoise) {
  SplitMix64 rng(GetParam() * 0x7f7f + 13);
  auto adf = RandomAdf(rng);
  const std::string once = FormatAdf(adf);
  // Inject comment and blank-line noise between every line.
  std::string noisy;
  for (char ch : once) {
    noisy += ch;
    if (ch == '\n' && rng.NextBelow(3) == 0) {
      noisy += "# noise " + std::to_string(rng.Next()) + "\n\n";
    }
  }
  auto reparsed = ParseAdf(noisy);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(FormatAdf(reparsed->description), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdfPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace dmemo
