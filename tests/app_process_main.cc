// Helper binary for the multi-process launcher test: behaves as boss or
// worker depending on the numeric process name the launcher assigned.
//
// Boss (process 0): drops kTasks task memos in the job jar, collects
// kTasks result memos, verifies the arithmetic, then drops one poison memo
// per worker so everyone exits.
// Worker: repeatedly takes a task, squares it, deposits the result;
// terminates on poison.
#include <cstdio>

#include "patterns/job_jar.h"
#include "runtime/launcher.h"
#include "transferable/scalars.h"

namespace {

constexpr int kTasks = 12;
constexpr int kWorkers = 2;
constexpr int kPoison = -1;

int IntOf(const dmemo::TransferablePtr& v) {
  return std::static_pointer_cast<dmemo::TInt32>(v)->value();
}

int RunBoss(dmemo::Memo& memo) {
  const dmemo::Key jar = dmemo::Key::Named("tasks");
  const dmemo::Key results = dmemo::Key::Named("results");
  for (int i = 0; i < kTasks; ++i) {
    if (!memo.put(jar, dmemo::MakeInt32(i)).ok()) return 1;
  }
  long long sum = 0;
  for (int i = 0; i < kTasks; ++i) {
    auto v = memo.get(results);
    if (!v.ok()) return 1;
    sum += IntOf(*v);
  }
  long long expected = 0;
  for (int i = 0; i < kTasks; ++i) expected += 1LL * i * i;
  for (int w = 0; w < kWorkers; ++w) {
    if (!memo.put(jar, dmemo::MakeInt32(kPoison)).ok()) return 1;
  }
  return sum == expected ? 0 : 3;
}

int RunWorker(dmemo::Memo& memo) {
  const dmemo::Key jar = dmemo::Key::Named("tasks");
  const dmemo::Key results = dmemo::Key::Named("results");
  for (;;) {
    auto task = memo.get(jar);
    if (!task.ok()) return 1;
    const int v = IntOf(*task);
    if (v == kPoison) return 0;
    if (!memo.put(results, dmemo::MakeInt32(v * v)).ok()) return 1;
  }
}

}  // namespace

int main() {
  auto memo = dmemo::ConnectFromEnvironment();
  if (!memo.ok()) {
    std::fprintf(stderr, "app_process: %s\n",
                 memo.status().ToString().c_str());
    return 2;
  }
  const int id = dmemo::ProcessIdFromEnvironment();
  return id == 0 ? RunBoss(*memo) : RunWorker(*memo);
}
