// Tests for the Sec. 6.2 / 6.3 pattern library: named objects, shared
// arrays, job jars, futures, I-structures, shared records, semaphores and
// barriers — each exercised as the paper describes its idiom.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "patterns/patterns.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

class PatternsTest : public ::testing::Test {
 protected:
  LocalSpacePtr space_ = std::make_shared<LocalSpace>("patterns");
  Memo memo_ = Memo::Local(space_);
};

// ---- named objects ---------------------------------------------------------

TEST_F(PatternsTest, NamedObjectLifecycle) {
  NamedObject obj(memo_, Key::Named("config"));
  EXPECT_FALSE(*obj.Exists());
  ASSERT_TRUE(obj.Create(MakeInt32(10)).ok());
  EXPECT_TRUE(*obj.Exists());
  EXPECT_EQ(IntOf(*obj.Read()), 10);
  EXPECT_TRUE(*obj.Exists());  // Read does not consume

  auto taken = obj.Take();
  ASSERT_TRUE(taken.ok());
  EXPECT_FALSE(*obj.Exists());  // exclusive ownership
  ASSERT_TRUE(obj.Store(MakeInt32(11)).ok());
  EXPECT_EQ(IntOf(*obj.Read()), 11);
  ASSERT_TRUE(obj.Destroy().ok());
  EXPECT_FALSE(*obj.Exists());
}

// ---- shared array ------------------------------------------------------------

TEST_F(PatternsTest, SharedArrayReadWrite) {
  SharedArray2D array(memo_, memo_.create_symbol(), 4, 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      ASSERT_TRUE(
          array.Write(i, j, MakeInt32(static_cast<int>(i * 4 + j))).ok());
    }
  }
  EXPECT_EQ(IntOf(*array.Read(3, 2)), 14);
  EXPECT_TRUE(*array.Present(0, 0));
}

TEST_F(PatternsTest, SharedArrayBoundsChecked) {
  SharedArray2D array(memo_, memo_.create_symbol(), 2, 2);
  EXPECT_EQ(array.Write(2, 0, MakeInt32(0)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(array.Read(0, 2).status().code(), StatusCode::kOutOfRange);
}

TEST_F(PatternsTest, SharedArrayReaderBlocksForWriter) {
  SharedArray2D array(memo_, memo_.create_symbol(), 2, 2);
  std::atomic<bool> read_done{false};
  std::thread reader([&] {
    auto v = array.Read(1, 1);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(IntOf(*v), 5);
    read_done = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(read_done.load());
  ASSERT_TRUE(array.Write(1, 1, MakeInt32(5)).ok());
  reader.join();
}

TEST_F(PatternsTest, SharedArrayElementsAreIndependentFolders) {
  SharedArray2D array(memo_, memo_.create_symbol(), 2, 2);
  ASSERT_TRUE(array.Write(0, 0, MakeInt32(1)).ok());
  EXPECT_TRUE(*array.Present(0, 0));
  EXPECT_FALSE(*array.Present(0, 1));
  EXPECT_NE(array.ElementKey(0, 0), array.ElementKey(0, 1));
}

// ---- job jars -----------------------------------------------------------------

TEST_F(PatternsTest, JobJarDropAndTake) {
  JobJar jar(memo_, Key::Named("jar"));
  ASSERT_TRUE(jar.Drop(MakeInt32(1)).ok());
  ASSERT_TRUE(jar.Drop(MakeInt32(2)).ok());
  EXPECT_EQ(*jar.Pending(), 2u);
  ASSERT_TRUE(jar.TakeTask().ok());
  auto maybe = jar.TryTakeTask();
  ASSERT_TRUE(maybe.ok());
  EXPECT_TRUE(maybe->has_value());
  auto empty = jar.TryTakeTask();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST_F(PatternsTest, WorkerPrefersEitherJarNeverStarves) {
  // Sec. 6.2.4: a worker drains its private jar and the common jar with
  // get_alt; tasks in both must all be processed.
  Symbol jars = memo_.create_symbol();
  JobJar common(memo_, JobJar::CommonJar(jars));
  JobJar private0(memo_, JobJar::PrivateJar(jars, 0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(common.Drop(MakeInt32(i)).ok());
    ASSERT_TRUE(private0.Drop(MakeInt32(100 + i)).ok());
  }
  WorkerJars worker(memo_, jars, 0);
  int count = 0;
  while (auto task = *worker.TryTakeTask()) {
    ++count;
    (void)task;
  }
  EXPECT_EQ(count, 10);
}

TEST_F(PatternsTest, PrivateJarTargetsOneWorker) {
  Symbol jars = memo_.create_symbol();
  JobJar private1(memo_, JobJar::PrivateJar(jars, 1));
  ASSERT_TRUE(private1.Drop(MakeString("only-for-1")).ok());
  WorkerJars worker0(memo_, jars, 0);
  auto none = worker0.TryTakeTask();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());  // worker 0 cannot see worker 1's jar
  WorkerJars worker1(memo_, jars, 1);
  auto task = worker1.TryTakeTask();
  ASSERT_TRUE(task.ok());
  EXPECT_TRUE(task->has_value());
}

// ---- futures -------------------------------------------------------------------

TEST_F(PatternsTest, FutureSetWaitTake) {
  Future fut(memo_, Key::Named("f"));
  EXPECT_FALSE(*fut.IsSet());
  std::atomic<bool> waited{false};
  std::thread consumer([&] {
    auto v = fut.Wait();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(IntOf(*v), 9);
    waited = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(waited.load());
  ASSERT_TRUE(fut.Set(MakeInt32(9)).ok());
  consumer.join();
  // Wait left the value; Take consumes it and the folder vanishes.
  EXPECT_TRUE(*fut.IsSet());
  ASSERT_TRUE(fut.Take().ok());
  EXPECT_FALSE(*fut.IsSet());
}

TEST_F(PatternsTest, FutureTriggerFeedsJobJar) {
  Future fut(memo_, Key::Named("f2"));
  JobJar jar(memo_, Key::Named("jar2"));
  ASSERT_TRUE(fut.Trigger(jar.key(), MakeString("wake-op")).ok());
  EXPECT_EQ(*jar.Pending(), 0u);
  ASSERT_TRUE(fut.Set(MakeInt32(1)).ok());
  EXPECT_EQ(*jar.Pending(), 1u);
}

// ---- i-structures ---------------------------------------------------------------

TEST_F(PatternsTest, IStructureElementsAreAssignOnceCells) {
  IStructure is(memo_, memo_.create_symbol(), 8);
  ASSERT_TRUE(is.Write(3, MakeInt32(33)).ok());
  EXPECT_TRUE(*is.Written(3));
  EXPECT_FALSE(*is.Written(4));
  EXPECT_EQ(IntOf(*is.Read(3)), 33);
  EXPECT_EQ(is.Write(8, MakeInt32(0)).code(), StatusCode::kOutOfRange);
}

TEST_F(PatternsTest, IStructureReaderBlocksUntilProducerWrites) {
  IStructure is(memo_, memo_.create_symbol(), 4);
  std::atomic<int> sum{0};
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    readers.emplace_back([&, i] {
      auto v = is.Read(i);
      ASSERT_TRUE(v.ok());
      sum.fetch_add(IntOf(*v));
    });
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sum.load(), 0);  // everyone is parked
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(is.Write(i, MakeInt32(static_cast<int>(i + 1))).ok());
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(sum.load(), 10);
}

// ---- shared records --------------------------------------------------------------

TEST_F(PatternsTest, SharedRecordCheckoutExcludes) {
  SharedRecord record(memo_, Key::Named("rec"));
  ASSERT_TRUE(record.Initialize(MakeInt32(0)).ok());
  constexpr int kThreads = 4, kRounds = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        auto checkout = record.Acquire();
        ASSERT_TRUE(checkout.ok());
        int v = IntOf(checkout->value());
        checkout->value() = MakeInt32(v + 1);
        ASSERT_TRUE(checkout->Commit().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(IntOf(*record.Peek()), kThreads * kRounds);
}

TEST_F(PatternsTest, SharedRecordCheckoutAutoCommitsOnScopeExit) {
  SharedRecord record(memo_, Key::Named("rec2"));
  ASSERT_TRUE(record.Initialize(MakeInt32(5)).ok());
  {
    auto checkout = record.Acquire();
    ASSERT_TRUE(checkout.ok());
    checkout->value() = MakeInt32(6);
    // No explicit Commit: the destructor must put the record back.
  }
  EXPECT_EQ(IntOf(*record.Peek()), 6);
}

// ---- semaphores -------------------------------------------------------------------

TEST_F(PatternsTest, MemoSemaphoreBoundsConcurrency) {
  MemoSemaphore sem(memo_, Key::Named("sem"));
  ASSERT_TRUE(sem.Initialize(2).ok());
  EXPECT_EQ(*sem.Value(), 2u);
  std::atomic<int> inside{0}, peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      Memo m = Memo::Local(space_);
      MemoSemaphore worker_sem(m, Key::Named("sem"));
      ASSERT_TRUE(worker_sem.Acquire().ok());
      int cur = inside.fetch_add(1) + 1;
      int expect = peak.load();
      while (cur > expect && !peak.compare_exchange_weak(expect, cur)) {
      }
      std::this_thread::sleep_for(5ms);
      inside.fetch_sub(1);
      ASSERT_TRUE(worker_sem.Release().ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(*sem.Value(), 2u);
}

TEST_F(PatternsTest, TryAcquireDoesNotBlock) {
  MemoSemaphore sem(memo_, Key::Named("sem3"));
  ASSERT_TRUE(sem.Initialize(1).ok());
  EXPECT_TRUE(*sem.TryAcquire());
  EXPECT_FALSE(*sem.TryAcquire());
  ASSERT_TRUE(sem.Release().ok());
  EXPECT_TRUE(*sem.TryAcquire());
}

// ---- ordered queue -----------------------------------------------------------------

TEST_F(PatternsTest, OrderedQueuePreservesFifo) {
  // Folders are unordered; the OrderedQueue idiom restores FIFO.
  OrderedQueue q(memo_, memo_.create_symbol());
  ASSERT_TRUE(q.Initialize().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.Push(MakeInt32(i)).ok());
  }
  EXPECT_EQ(*q.Size(), 20u);
  for (int i = 0; i < 20; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(IntOf(*v), i) << "FIFO violated at element " << i;
  }
  EXPECT_EQ(*q.Size(), 0u);
}

TEST_F(PatternsTest, OrderedQueuePopBlocksUntilPush) {
  OrderedQueue q(memo_, memo_.create_symbol());
  ASSERT_TRUE(q.Initialize().ok());
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(IntOf(*v), 7);
    got = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.Push(MakeInt32(7)).ok());
  consumer.join();
}

TEST_F(PatternsTest, OrderedQueueTryPopNonBlocking) {
  OrderedQueue q(memo_, memo_.create_symbol());
  ASSERT_TRUE(q.Initialize().ok());
  auto none = q.TryPop();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  ASSERT_TRUE(q.Push(MakeInt32(1)).ok());
  auto v = q.TryPop();
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(IntOf(**v), 1);
  auto empty_again = q.TryPop();
  ASSERT_TRUE(empty_again.ok());
  EXPECT_FALSE(empty_again->has_value());
}

TEST_F(PatternsTest, OrderedQueueManyProducersKeepElementsUnique) {
  Symbol name = memo_.create_symbol();
  OrderedQueue q(memo_, name);
  ASSERT_TRUE(q.Initialize().ok());
  constexpr int kProducers = 4, kEach = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Memo m = Memo::Local(space_);
      OrderedQueue worker_q(m, name);
      for (int i = 0; i < kEach; ++i) {
        ASSERT_TRUE(worker_q.Push(MakeInt32(p * kEach + i)).ok());
      }
    });
  }
  for (auto& t : producers) t.join();
  std::set<int> seen;
  for (int i = 0; i < kProducers * kEach; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(seen.insert(IntOf(*v)).second) << "duplicate element";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kEach));
}

// ---- barrier ----------------------------------------------------------------------

TEST_F(PatternsTest, BarrierSynchronizesRounds) {
  constexpr std::uint32_t kParticipants = 4;
  constexpr std::uint32_t kRounds = 5;
  Symbol name = memo_.create_symbol();
  std::atomic<int> phase_counter{0};
  std::vector<int> observed(kRounds, 0);
  std::mutex observed_mu;
  std::vector<std::thread> threads;
  for (std::uint32_t rank = 0; rank < kParticipants; ++rank) {
    threads.emplace_back([&, rank] {
      Memo m = Memo::Local(space_);
      MemoBarrier barrier(m, name, kParticipants, rank);
      for (std::uint32_t round = 0; round < kRounds; ++round) {
        phase_counter.fetch_add(1);
        ASSERT_TRUE(barrier.Arrive(round).ok());
        // After the barrier, every participant of this round has arrived.
        std::lock_guard lock(observed_mu);
        observed[round] = phase_counter.load();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    // By the time anyone exits round r, all (r+1)*N arrivals have happened.
    EXPECT_GE(observed[round], static_cast<int>((round + 1) * kParticipants))
        << "round " << round;
  }
}

TEST_F(PatternsTest, SingleParticipantBarrierIsFree) {
  MemoBarrier barrier(memo_, memo_.create_symbol(), 1, 0);
  EXPECT_TRUE(barrier.Arrive(0).ok());
  EXPECT_TRUE(barrier.Arrive(1).ok());
}

}  // namespace
}  // namespace dmemo
