// Tests for the network-communication foundation (Sec. 3.1.1): address
// parsing, the three point-to-point transports, the scheme mux, and the
// Transputer-style channel decorators.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "transport/channel.h"
#include "transport/shm_transport.h"
#include "transport/simnet.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

Bytes Msg(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string Str(const IoBuf& b) {
  std::string out;
  out.reserve(b.size());
  for (std::size_t i = 0; i < b.slice_count(); ++i) {
    auto s = b.slice_span(i);
    out.append(reinterpret_cast<const char*>(s.data()), s.size());
  }
  return out;
}

TEST(AddressTest, ParseSplitsSchemeAndRest) {
  auto p = ParseAddress("tcp://127.0.0.1:80");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->scheme, "tcp");
  EXPECT_EQ(p->rest, "127.0.0.1:80");
  EXPECT_FALSE(ParseAddress("no-scheme").ok());
  EXPECT_FALSE(ParseAddress("://empty").ok());
}

// One parameterized suite runs the Connection contract over every transport.
struct TransportCase {
  const char* label;
  // Returns (transport, listen URL).
  std::pair<TransportPtr, std::string> (*make)();
};

std::pair<TransportPtr, std::string> MakeSimCase() {
  static SimNetworkPtr network = std::make_shared<SimNetwork>();
  static std::atomic<int> counter{0};
  return {MakeSimTransport(network),
          "sim://endpoint" + std::to_string(counter.fetch_add(1))};
}

std::pair<TransportPtr, std::string> MakeTcpCase() {
  return {MakeTcpTransport(), "tcp://127.0.0.1:0"};
}

std::pair<TransportPtr, std::string> MakeUnixCase() {
  static std::atomic<int> counter{0};
  return {MakeUnixTransport(),
          "unix:///tmp/dmemo_tt_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1)) + ".sock"};
}

std::pair<TransportPtr, std::string> MakeShmCase() {
  static std::atomic<int> counter{0};
  return {MakeShmTransport(),
          "shm:///tmp/dmemo_shm_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1)) + ".sock"};
}

class TransportContractTest : public ::testing::TestWithParam<TransportCase> {
 protected:
  void SetUp() override {
    auto [transport, url] = GetParam().make();
    transport_ = transport;
    auto listener = transport_->Listen(url);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::move(*listener);
  }

  // Dial + accept a connected pair.
  void Connect(ConnectionPtr& client, ConnectionPtr& server) {
    std::thread dialer([&] {
      auto c = transport_->Dial(listener_->address());
      ASSERT_TRUE(c.ok()) << c.status();
      client = std::move(*c);
    });
    auto s = listener_->Accept();
    ASSERT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
    dialer.join();
  }

  TransportPtr transport_;
  ListenerPtr listener_;
};

TEST_P(TransportContractTest, EchoRoundTrip) {
  ConnectionPtr client, server;
  Connect(client, server);
  ASSERT_TRUE(client->Send(Msg("ping")).ok());
  auto got = server->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Str(*got), "ping");
  ASSERT_TRUE(server->Send(Msg("pong")).ok());
  auto back = client->Receive();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Str(*back), "pong");
}

TEST_P(TransportContractTest, FramesPreserveBoundaries) {
  ConnectionPtr client, server;
  Connect(client, server);
  ASSERT_TRUE(client->Send(Msg("one")).ok());
  ASSERT_TRUE(client->Send(Msg("two")).ok());
  ASSERT_TRUE(client->Send(Msg("")).ok());  // empty frame is a valid frame
  EXPECT_EQ(Str(*server->Receive()), "one");
  EXPECT_EQ(Str(*server->Receive()), "two");
  EXPECT_EQ(Str(*server->Receive()), "");
}

TEST_P(TransportContractTest, LargeFrame) {
  ConnectionPtr client, server;
  Connect(client, server);
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  // Send from another thread: a frame larger than the kernel socket buffer
  // cannot complete until the peer drains it.
  std::thread sender([&] { ASSERT_TRUE(client->Send(big).ok()); });
  auto got = server->Receive();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST_P(TransportContractTest, GatherSendDeliversOneFrame) {
  // Scatter-gather contract: N slices go out as ONE frame whose payload is
  // the concatenation, indistinguishable on the receive side from a flat
  // Send. Covers empty slices and an all-empty gather (still one frame).
  ConnectionPtr client, server;
  Connect(client, server);

  Bytes head = Msg("head|");
  Bytes empty;
  Bytes mid = Msg("middle|");
  Bytes tail = Msg("tail");
  const std::span<const std::uint8_t> slices[] = {head, empty, mid, tail};
  ASSERT_TRUE(client->Send(slices).ok());
  auto got = server->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Str(*got), "head|middle|tail");

  const std::span<const std::uint8_t> all_empty[] = {empty, empty};
  ASSERT_TRUE(client->Send(all_empty).ok());
  auto got_empty = server->Receive();
  ASSERT_TRUE(got_empty.ok());
  EXPECT_EQ(Str(*got_empty), "");

  // Boundaries hold across a mixed flat/gather sequence.
  ASSERT_TRUE(client->Send(Msg("flat")).ok());
  EXPECT_EQ(Str(*server->Receive()), "flat");
}

TEST_P(TransportContractTest, GatherSendLargeChained) {
  // A gather whose total exceeds socket buffers (exercises partial-write
  // resumption inside writev loops and ring-buffer slice cursors).
  ConnectionPtr client, server;
  Connect(client, server);
  std::vector<Bytes> blocks;
  std::vector<std::span<const std::uint8_t>> slices;
  Bytes expected;
  for (int i = 0; i < 16; ++i) {
    Bytes b(64 * 1024);
    for (std::size_t j = 0; j < b.size(); ++j) {
      b[j] = static_cast<std::uint8_t>(i * 131 + j * 7);
    }
    expected.insert(expected.end(), b.begin(), b.end());
    blocks.push_back(std::move(b));
  }
  for (const Bytes& b : blocks) slices.emplace_back(b);
  std::thread sender([&] {
    ASSERT_TRUE(
        client
            ->Send(std::span<const std::span<const std::uint8_t>>(slices))
            .ok());
  });
  auto got = server->Receive();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, expected);
}

TEST_P(TransportContractTest, SendBufDeliversIoBufSlices) {
  // The IoBuf convenience entry: a multi-slice buffer (header + payload +
  // tail, as EncodeToIoBuf produces) arrives as one contiguous frame.
  ConnectionPtr client, server;
  Connect(client, server);
  IoBuf frame = IoBuf::FromBytes(Msg("hdr|"));
  frame.Append(IoBuf::FromBytes(Msg("payload|")));
  frame.Append(IoBuf::FromBytes(Msg("tail")));
  ASSERT_TRUE(client->SendBuf(frame).ok());
  auto got = server->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Str(*got), "hdr|payload|tail");
}

TEST_P(TransportContractTest, ReceiveForTimesOutThenDelivers) {
  ConnectionPtr client, server;
  Connect(client, server);
  auto none = server->ReceiveFor(30ms);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  ASSERT_TRUE(client->Send(Msg("late")).ok());
  auto got = server->ReceiveFor(1000ms);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(Str(**got), "late");
}

TEST_P(TransportContractTest, CloseWakesPeerReceive) {
  ConnectionPtr client, server;
  Connect(client, server);
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    client->Close();
  });
  auto got = server->Receive();
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  closer.join();
}

TEST_P(TransportContractTest, DialUnknownEndpointFails) {
  // An address nobody listens on.
  auto [transport, url] = GetParam().make();
  auto conn = transport->Dial(std::string(url) + "nobodyhome");
  EXPECT_FALSE(conn.ok());
}

TEST_P(TransportContractTest, ConcurrentBidirectionalTraffic) {
  ConnectionPtr client, server;
  Connect(client, server);
  constexpr int kN = 200;
  std::thread c2s([&] {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(client->Send(Msg("c" + std::to_string(i))).ok());
    }
  });
  std::thread s2c([&] {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(server->Send(Msg("s" + std::to_string(i))).ok());
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(Str(*server->Receive()), "c" + std::to_string(i));
    EXPECT_EQ(Str(*client->Receive()), "s" + std::to_string(i));
  }
  c2s.join();
  s2c.join();
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportContractTest,
    ::testing::Values(TransportCase{"sim", MakeSimCase},
                      TransportCase{"tcp", MakeTcpCase},
                      TransportCase{"unix", MakeUnixCase},
                      TransportCase{"shm", MakeShmCase}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(ShmTransportTest, CrossProcessRoundTrip) {
  // The real Figure-1 claim: two *processes* exchanging frames through
  // shared memory. The child dials, sends, and checks the echo; the parent
  // accepts and echoes. Exit status carries the child's verdict.
  auto transport = MakeShmTransport();
  const std::string url =
      "shm:///tmp/dmemo_shm_fork_" + std::to_string(::getpid()) + ".sock";
  auto listener = transport->Listen(url);
  ASSERT_TRUE(listener.ok()) << listener.status();

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child process: a fresh transport object (no shared state with the
    // parent beyond the filesystem and the segments themselves).
    auto child_transport = MakeShmTransport();
    auto conn = child_transport->Dial(url);
    if (!conn.ok()) ::_exit(10);
    Bytes payload(100'000);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7);
    }
    for (int round = 0; round < 5; ++round) {
      if (!(*conn)->Send(payload).ok()) ::_exit(11);
      auto echo = (*conn)->Receive();
      if (!echo.ok() || *echo != payload) ::_exit(12);
    }
    (*conn)->Close();
    ::_exit(0);
  }
  // Parent: echo server.
  auto server = (*listener)->Accept();
  ASSERT_TRUE(server.ok()) << server.status();
  for (int round = 0; round < 5; ++round) {
    auto frame = (*server)->Receive();
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_TRUE((*server)->SendBuf(*frame).ok());
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShmTransportTest, FrameLargerThanRingIsChunked) {
  // A 64 KiB ring carrying a 1 MiB frame: the writer must chunk across the
  // ring while the reader drains — flow control, not failure.
  ShmTransportOptions opts;
  opts.ring_bytes = 64 << 10;
  auto transport = MakeShmTransport(opts);
  const std::string url =
      "shm:///tmp/dmemo_shm_chunk_" + std::to_string(::getpid()) + ".sock";
  auto listener = transport->Listen(url);
  ASSERT_TRUE(listener.ok()) << listener.status();
  ConnectionPtr server;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    ASSERT_TRUE(s.ok());
    server = std::move(*s);
  });
  auto client = transport->Dial(url);
  ASSERT_TRUE(client.ok()) << client.status();
  accepter.join();

  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  std::thread sender([&] { ASSERT_TRUE((*client)->Send(big).ok()); });
  auto got = server->Receive();
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST(ShmTransportTest, DataPathCarriesNoSocketTraffic) {
  // After the handshake, frames move purely through shared memory: the
  // connection keeps working even though its handshake socket is gone.
  auto transport = MakeShmTransport();
  const std::string url =
      "shm:///tmp/dmemo_shm_pure_" + std::to_string(::getpid()) + ".sock";
  auto listener = transport->Listen(url);
  ASSERT_TRUE(listener.ok());
  ConnectionPtr server;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    ASSERT_TRUE(s.ok());
    server = std::move(*s);
  });
  auto client = transport->Dial(url);
  ASSERT_TRUE(client.ok());
  accepter.join();
  (*listener)->Close();  // no socket endpoint remains

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*client)->Send(Msg("m" + std::to_string(i))).ok());
    EXPECT_EQ(Str(*server->Receive()), "m" + std::to_string(i));
  }
}

TEST(TcpTransportTest, EphemeralPortResolvedInAddress) {
  auto transport = MakeTcpTransport();
  auto listener = transport->Listen("tcp://127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  EXPECT_EQ((*listener)->address().find("tcp://127.0.0.1:"), 0u);
  EXPECT_NE((*listener)->address(), "tcp://127.0.0.1:0");
}

TEST(SimTransportTest, DuplicateListenerRejected) {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  auto first = transport->Listen("sim://dup");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(transport->Listen("sim://dup").status().code(),
            StatusCode::kAlreadyExists);
  // After closing, the name is free again.
  (*first)->Close();
  EXPECT_TRUE(transport->Listen("sim://dup").ok());
}

TEST(SimTransportTest, LinkProfileDelaysDelivery) {
  auto network = std::make_shared<SimNetwork>();
  network->SetEndpointLinkProfile("slow", SimLinkProfile{0, 30'000us});
  auto transport = MakeSimTransport(network);
  auto listener = transport->Listen("sim://slow");
  ASSERT_TRUE(listener.ok());
  std::thread accepter([&] {
    auto server = (*listener)->Accept();
    ASSERT_TRUE(server.ok());
    (void)(*server)->Receive();
  });
  auto client = transport->Dial("sim://slow");
  ASSERT_TRUE(client.ok());
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE((*client)->Send(Msg("x")).ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
  (*client)->Close();
  accepter.join();
}

TEST(TransportMuxTest, DispatchesBySchemeAndRejectsUnknown) {
  auto mux = TransportMux::CreateDefault();
  auto network = std::make_shared<SimNetwork>();
  ASSERT_TRUE(mux->RegisterTransport(MakeSimTransport(network)).ok());
  EXPECT_EQ(mux->RegisterTransport(MakeSimTransport(network)).code(),
            StatusCode::kAlreadyExists);

  auto sim_listener = mux->Listen("sim://via-mux");
  ASSERT_TRUE(sim_listener.ok());
  auto tcp_listener = mux->Listen("tcp://127.0.0.1:0");
  ASSERT_TRUE(tcp_listener.ok());
  EXPECT_EQ(mux->Dial("ftp://x").status().code(), StatusCode::kNotFound);
}

// ---- channel decorators: the Transputer example -------------------------------

// A connected sim pair to wrap.
std::pair<ConnectionPtr, ConnectionPtr> SimPair() {
  auto network = std::make_shared<SimNetwork>();
  auto transport = MakeSimTransport(network);
  auto listener = transport->Listen("sim://chan");
  EXPECT_TRUE(listener.ok());
  ConnectionPtr server;
  std::thread accepter([&] {
    auto s = (*listener)->Accept();
    EXPECT_TRUE(s.ok());
    server = std::move(*s);
  });
  auto client = transport->Dial("sim://chan");
  EXPECT_TRUE(client.ok());
  accepter.join();
  return {std::move(*client), std::move(server)};
}

TEST(ChannelTest, BlockingChannelChargesSender) {
  auto [client, server] = SimPair();
  // 1 MB at 10 MB/s => ~100 ms spent inside Send.
  auto chan = MakeBlockingChannel(std::move(client), ChannelProfile{10'000, 4096});
  Bytes big(1'000'000, 0x55);
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(chan->Send(big).ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 80ms);
  EXPECT_EQ(server->Receive()->size(), big.size());
}

TEST(ChannelTest, FragmentingSendReturnsImmediately) {
  auto [client, server] = SimPair();
  auto tx = MakeFragmentingChannel(std::move(client),
                                   ChannelProfile{10'000, 4096});
  auto rx = MakeFragmentingChannel(std::move(server),
                                   ChannelProfile{10'000, 4096});
  Bytes big(1'000'000, 0x66);
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(tx->Send(big).ok());
  // The caller got control back long before the ~100 ms transmission ended.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 50ms);
  auto got = rx->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST(ChannelTest, FragmentingReassemblesManyMessages) {
  auto [client, server] = SimPair();
  ChannelProfile fast{0, 1024};  // no throttle; focus on reassembly
  auto tx = MakeFragmentingChannel(std::move(client), fast);
  auto rx = MakeFragmentingChannel(std::move(server), fast);
  for (int i = 0; i < 20; ++i) {
    Bytes msg(static_cast<std::size_t>(i * 700 + 1),
              static_cast<std::uint8_t>(i));
    ASSERT_TRUE(tx->Send(msg).ok());
    auto got = rx->Receive();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, msg) << "message " << i;
  }
}

TEST(ChannelTest, VirtualConnectionsKeepStreamsSeparate) {
  auto [client, server] = SimPair();
  ChannelProfile fast{0, 512};
  FragmentingMux mux_a(std::move(client), fast);
  FragmentingMux mux_b(std::move(server), fast);
  auto a1 = mux_a.OpenVirtual(1);
  auto a2 = mux_a.OpenVirtual(2);
  auto b1 = mux_b.OpenVirtual(1);
  auto b2 = mux_b.OpenVirtual(2);
  ASSERT_TRUE(a1.ok() && a2.ok() && b1.ok() && b2.ok());

  Bytes on1(2000, 0x01), on2(3000, 0x02);
  ASSERT_TRUE((*a1)->Send(on1).ok());
  ASSERT_TRUE((*a2)->Send(on2).ok());
  EXPECT_EQ(*(*b2)->Receive(), on2);  // stream 2 sees only stream-2 bytes
  EXPECT_EQ(*(*b1)->Receive(), on1);
}

TEST(ChannelTest, PacketsSentCountsFragments) {
  auto [client, server] = SimPair();
  ChannelProfile profile{0, 1000};
  FragmentingMux mux_a(std::move(client), profile);
  FragmentingMux mux_b(std::move(server), profile);
  auto a = mux_a.OpenVirtual(0);
  auto b = mux_b.OpenVirtual(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Send(Bytes(5500, 0x3c)).ok());  // 6 packets of <=1000
  ASSERT_TRUE((*b)->Receive().ok());
  EXPECT_EQ(mux_a.packets_sent(), 6u);
}

}  // namespace
}  // namespace dmemo
