// Open-loop load-generator self-tests: the arrival schedule is honored
// independently of op speed, intended-start accounting exposes a stall that
// the service-time (closed-loop) view hides, and the JSON run reporter
// round-trips through the schema-v1 document.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "loadgen/loadgen.h"
#include "loadgen/report.h"

namespace dmemo::bench {
namespace {

using namespace std::chrono_literals;

TEST(LoadgenTest, FixedRateScheduleIsExactAndDeterministic) {
  // One thread, fixed rate: arrival i is scheduled at i/rate, and every
  // arrival strictly before the deadline runs — 0.2 s at 1000/s is exactly
  // 200 ops, regardless of how fast the op itself is.
  OpenLoopOptions options;
  options.rate = 1000;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.clients = 8;
  options.duration = 200ms;
  std::atomic<std::uint64_t> calls{0};
  auto result = RunOpenLoop(options, [&](std::size_t, std::size_t client,
                                         SplitMix64&) {
    calls.fetch_add(1);
    EXPECT_LT(client, 8u);
    return true;
  });
  EXPECT_EQ(result.ops, 200u);
  EXPECT_EQ(calls.load(), 200u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.offered_rate, 1000.0);
  EXPECT_NEAR(result.achieved_rate, 1000.0, 150.0);
}

TEST(LoadgenTest, PoissonScheduleApproximatesOfferedRate) {
  OpenLoopOptions options;
  options.rate = 2000;
  options.arrival = Arrival::kPoisson;
  options.threads = 2;
  options.duration = 400ms;
  options.seed = 42;
  auto result =
      RunOpenLoop(options, [](std::size_t, std::size_t, SplitMix64&) {
        return true;
      });
  // ~800 expected arrivals; Poisson σ ≈ 28, allow 5σ plus scheduler slack.
  EXPECT_GT(result.ops, 600u);
  EXPECT_LT(result.ops, 1000u);
}

TEST(LoadgenTest, FailedOpsAreCountedAsErrors) {
  OpenLoopOptions options;
  options.rate = 1000;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.duration = 100ms;
  auto result =
      RunOpenLoop(options, [](std::size_t, std::size_t client, SplitMix64&) {
        return client % 2 == 0;  // every other logical client "fails"
      });
  EXPECT_EQ(result.ops, 100u);
  EXPECT_EQ(result.errors, 50u);
}

TEST(LoadgenTest, IntendedStartAccountingRevealsAStallServiceTimeHides) {
  // The coordinated-omission test: the op stalls once for 100 ms. A
  // closed-loop bench charges that to a single sample (service p99 stays
  // tiny); the open-loop schedule keeps generating arrivals during the
  // stall, and each backlogged arrival's latency runs from its *intended*
  // start — so the stall smears across ~200 samples and the intended p99
  // surfaces it.
  OpenLoopOptions options;
  options.rate = 2000;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.duration = 600ms;
  std::atomic<std::uint64_t> calls{0};
  auto result = RunOpenLoop(options, [&](std::size_t, std::size_t,
                                         SplitMix64&) {
    if (calls.fetch_add(1) == 100) {
      std::this_thread::sleep_for(100ms);
    }
    return true;
  });
  EXPECT_EQ(result.ops, 1200u);
  // Both views see the stalled request itself.
  EXPECT_GE(result.max_us, 90'000u);
  EXPECT_GE(result.service_max_us, 90'000u);
  // Only the intended-start view sees the queueing it caused: ~200 of 1200
  // samples carry backlog latency, far more than 1%, so the p99s diverge
  // by an order of magnitude.
  EXPECT_GT(result.p99_us, 20'000u);
  EXPECT_LT(result.service_p99_us, result.p99_us / 4);
}

TEST(LoadgenTest, AchievedRateNeverExceedsOffered) {
  // The rate-drift regression: a Poisson stream that drew extra arrivals —
  // or a stalled run replaying its backlog as a burst — used to report
  // achieved > offered (2034/s against a 2000/s schedule in a committed
  // baseline). The arrival budget plus the schedule-horizon denominator
  // bound achieved at offered + threads/duration, i.e. within rounding.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    OpenLoopOptions options;
    options.rate = 2000;
    options.arrival = Arrival::kPoisson;
    options.threads = 2;
    options.duration = 400ms;
    options.seed = seed;
    auto result =
        RunOpenLoop(options, [](std::size_t, std::size_t, SplitMix64&) {
          return true;
        });
    EXPECT_LE(result.achieved_rate, options.rate * 1.005) << "seed " << seed;
  }
}

TEST(LoadgenTest, CatchUpBurstDoesNotInflateAchievedRate) {
  // Stall the op once for 100 ms mid-run: the backlog fires as a burst
  // when the stall clears. The burst is real traffic (it must count, and
  // its latency must be charged) but it is replayed offered load, not
  // extra throughput.
  OpenLoopOptions options;
  options.rate = 1000;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.duration = 300ms;
  std::atomic<std::uint64_t> calls{0};
  auto result = RunOpenLoop(options, [&](std::size_t, std::size_t,
                                         SplitMix64&) {
    if (calls.fetch_add(1) == 50) std::this_thread::sleep_for(100ms);
    return true;
  });
  EXPECT_EQ(result.ops, 300u);  // every arrival ran, burst included
  EXPECT_LE(result.achieved_rate, options.rate * 1.005);
}

TEST(LoadgenTest, AsyncRunnerCompletesEveryArrivalPastServiceCapacity) {
  // Each op "serves" for 5 ms: a closed-loop single thread would cap at
  // 200/s, and the sync open-loop runner would drown in backlog. The
  // pipelined runner keeps the 400/s schedule because in-flight ops overlap
  // — the point of the async client. PendingOps here complete on a wall
  // clock, no worker threads involved.
  OpenLoopOptions options;
  options.rate = 400;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.duration = 300ms;
  std::atomic<std::uint64_t> issued{0};
  auto op = [&](std::size_t, std::size_t, SplitMix64&) {
    issued.fetch_add(1);
    const auto done_at = std::chrono::steady_clock::now() + 5ms;
    PendingOp pending;
    pending.poll = [done_at] {
      return std::chrono::steady_clock::now() >= done_at;
    };
    pending.take = [done_at] {
      std::this_thread::sleep_until(done_at);
      return true;
    };
    return pending;
  };
  auto result = RunOpenLoopAsync(options, op, /*max_inflight=*/64);
  EXPECT_EQ(result.ops, 120u);
  EXPECT_EQ(issued.load(), 120u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_LE(result.achieved_rate, options.rate * 1.005);
  // The schedule was not serialized behind the 5 ms service times: 120 ops
  // of 5 ms each would take 600 ms closed-loop; the run finished near its
  // 300 ms horizon.
  EXPECT_LT(result.duration_s, 0.45);
}

TEST(LoadgenTest, AsyncRunnerWindowBoundsInflight) {
  // With a window of 4 and ops that only complete on take(), the runner
  // must block the schedule rather than exceed 4 in flight.
  OpenLoopOptions options;
  options.rate = 1000;
  options.arrival = Arrival::kFixedRate;
  options.threads = 1;
  options.duration = 100ms;
  std::atomic<int> inflight{0};
  std::atomic<int> peak{0};
  auto op = [&](std::size_t, std::size_t, SplitMix64&) {
    const int now = inflight.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    PendingOp pending;
    pending.poll = [] { return false; };  // never "ready": harvest via take
    pending.take = [&inflight] {
      inflight.fetch_sub(1);
      return true;
    };
    return pending;
  };
  auto result = RunOpenLoopAsync(options, op, /*max_inflight=*/4);
  EXPECT_EQ(result.ops, 100u);
  EXPECT_LE(peak.load(), 4);
}

TEST(LoadgenTest, DrivesARealClusterWithoutErrors) {
  auto cluster = ClusterOrDie(TwoHostAdf("lg"));
  std::vector<Memo> handles;
  handles.push_back(ClientOrDie(*cluster, "hostA"));
  handles.push_back(ClientOrDie(*cluster, "hostB"));

  WorkloadOptions wl;
  wl.folders = 32;
  OpenLoopOptions options;
  options.rate = 400;
  options.threads = 2;
  options.clients = 64;
  options.duration = 300ms;

  auto put_get = RunOpenLoop(options, MakePutGetOp(handles, wl));
  EXPECT_GT(put_get.ops, 0u);
  EXPECT_EQ(put_get.errors, 0u);

  ASSERT_TRUE(PreloadFanOut(handles.front(), wl).ok());
  auto fanout = RunOpenLoop(options, MakeFanOutOp(handles, wl));
  EXPECT_GT(fanout.ops, 0u);
  EXPECT_EQ(fanout.errors, 0u);

  auto jar = RunOpenLoop(options, MakeJobJarOp(handles, wl));
  EXPECT_GT(jar.ops, 0u);
  EXPECT_EQ(jar.errors, 0u);

  handles.clear();
  cluster->Shutdown();
}

TEST(LoadgenTest, DrivesAClusterThroughTheAsyncPipeline) {
  // End-to-end async smoke: arrivals issue put_async/get_async, calls
  // coalesce into packed frames on the wire, and every future resolves
  // cleanly by the drain.
  auto cluster = ClusterOrDie(TwoHostAdf("lga"));
  std::vector<Memo> handles;
  handles.push_back(ClientOrDie(*cluster, "hostA"));
  handles.push_back(ClientOrDie(*cluster, "hostB"));

  WorkloadOptions wl;
  wl.folders = 32;
  OpenLoopOptions options;
  options.rate = 400;
  options.threads = 2;
  options.clients = 64;
  options.duration = 300ms;

  auto result = RunOpenLoopAsync(options, MakePutGetAsyncOp(handles, wl),
                                 /*max_inflight=*/64);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_LE(result.achieved_rate, options.rate * 1.005);

  handles.clear();
  cluster->Shutdown();
}

TEST(LoadgenTest, ReportJsonCarriesSchemaAndPhases) {
  BenchRunReport report;
  report.bench = "loadgen";
  report.mode = "open-loop";
  report.git_sha = "0123456789abcdef0123456789abcdef01234567";
  report.config = {{"rate", "1000"}, {"quote", "a\"b"}};
  report.include_metrics = false;
  OpenLoopResult result;
  result.ops = 10;
  result.p99_us = 1234;
  report.phases.push_back(PhaseFromResult("put_get", "put_get", result));

  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"open-loop\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"quote\": \"a\\\"b\""), std::string::npos);

  const std::string path =
      "/tmp/dmemo_loadgen_report_" + std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(WriteReport(path, report).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string read_back(json.size(), '\0');
  const std::size_t n = std::fread(read_back.data(), 1, json.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(read_back.data(), n), json);
}

}  // namespace
}  // namespace dmemo::bench
