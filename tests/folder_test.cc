// Tests for the directory of unordered queues (Sec. 2 / 6): blocking and
// non-blocking extraction, copies, alternatives, delayed puts, folder
// lifecycle and the unordered-extraction contract.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "folder/directory.h"
#include "transferable/scalars.h"

namespace dmemo {
namespace {

using namespace std::chrono_literals;

QualifiedKey QK(const std::string& name, std::uint32_t i = 0) {
  return QualifiedKey{"app", Key::Named(name, {i})};
}

Bytes B(std::uint8_t v) { return Bytes{v}; }

// Most semantics are identical for both instantiations; exercise the
// byte-valued one (the folder-server configuration) as the default.
using Dir = FolderDirectory<Bytes>;

TEST(KeyTest, EncodeDecodeRoundTrip) {
  Key key(SymbolFromName("matrix"), {7, 0, 4294967295u});
  ByteWriter w;
  key.EncodeTo(w);
  ByteReader r(w.data());
  auto got = Key::DecodeFrom(r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, key);
  EXPECT_TRUE(r.exhausted());
}

TEST(KeyTest, OversizedIndexRejectedOnDecode) {
  // A varint index wider than u32 on the wire is a protocol violation.
  ByteWriter w;
  w.u64(1);                    // symbol
  w.varint(1);                 // one index
  w.varint(0x1'0000'0000ULL);  // > u32
  ByteReader r(w.data());
  EXPECT_EQ(Key::DecodeFrom(r).status().code(), StatusCode::kDataLoss);
}

TEST(KeyTest, HashDistinguishesIndexVectors) {
  Key a(1, {1, 2});
  Key b(1, {2, 1});
  Key c(1, {1, 2, 0});
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(FolderTest, PutThenGet) {
  Dir dir;
  ASSERT_TRUE(dir.Put(QK("f"), B(1)).ok());
  auto v = dir.Get(QK("f"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, B(1));
}

TEST(FolderTest, FoldersAreIndependent) {
  Dir dir;
  ASSERT_TRUE(dir.Put(QK("f", 1), B(1)).ok());
  ASSERT_TRUE(dir.Put(QK("f", 2), B(2)).ok());
  EXPECT_EQ(*dir.Get(QK("f", 2)), B(2));
  EXPECT_EQ(*dir.Get(QK("f", 1)), B(1));
}

TEST(FolderTest, AppNamespacesIsolate) {
  // Same key, different applications: "applications will share data between
  // only their own processes".
  Dir dir;
  QualifiedKey a{"app1", Key::Named("f")};
  QualifiedKey b{"app2", Key::Named("f")};
  ASSERT_TRUE(dir.Put(a, B(1)).ok());
  EXPECT_EQ(dir.Count(b), 0u);
  EXPECT_EQ(dir.Count(a), 1u);
}

TEST(FolderTest, GetBlocksUntilPut) {
  Dir dir;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = dir.Get(QK("f"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, B(9));
    got = true;
  });
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(dir.Put(QK("f"), B(9)).ok());
  consumer.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(dir.GetStats().blocked_waits, 1u);
}

TEST(FolderTest, GetForTimesOut) {
  Dir dir;
  auto v = dir.GetFor(QK("f"), 30ms);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(FolderTest, GetSkipReturnsNilOnEmpty) {
  Dir dir;
  auto v = dir.GetSkip(QK("f"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
  ASSERT_TRUE(dir.Put(QK("f"), B(3)).ok());
  auto v2 = dir.GetSkip(QK("f"));
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(v2->has_value());
  EXPECT_EQ(**v2, B(3));
}

TEST(FolderTest, GetCopyLeavesTheMemo) {
  // "enabling another process (or the same process) to issue another get
  // operation on the folder".
  Dir dir;
  ASSERT_TRUE(dir.Put(QK("f"), B(5)).ok());
  EXPECT_EQ(*dir.GetCopy(QK("f")), B(5));
  EXPECT_EQ(*dir.GetCopy(QK("f")), B(5));
  EXPECT_EQ(dir.Count(QK("f")), 1u);
  EXPECT_EQ(*dir.Get(QK("f")), B(5));
  EXPECT_EQ(dir.Count(QK("f")), 0u);
}

TEST(FolderTest, TransferableCopyIsDeep) {
  FolderDirectory<TransferablePtr> dir;
  auto original = MakeInt32(7);
  ASSERT_TRUE(dir.Put(QK("f"), original).ok());
  auto copy = dir.GetCopy(QK("f"));
  ASSERT_TRUE(copy.ok());
  EXPECT_NE(copy->get(), original.get());  // distinct object
  EXPECT_TRUE(TransferableEquals(**copy, *original));
  // The original pointer itself comes back on extraction.
  auto extracted = dir.Get(QK("f"));
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->get(), original.get());
}

TEST(FolderTest, GetAltPicksAnEligibleFolder) {
  Dir dir;
  ASSERT_TRUE(dir.Put(QK("b"), B(2)).ok());
  std::vector<QualifiedKey> keys{QK("a"), QK("b"), QK("c")};
  auto hit = dir.GetAlt(keys);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->first, QK("b"));
  EXPECT_EQ(hit->second, B(2));
}

TEST(FolderTest, GetAltBlocksUntilAnyArrives) {
  Dir dir;
  std::vector<QualifiedKey> keys{QK("x"), QK("y")};
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto hit = dir.GetAlt(keys);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->first, QK("y"));
    got = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(dir.Put(QK("y"), B(1)).ok());
  consumer.join();
}

TEST(FolderTest, GetAltSkipNonBlocking) {
  Dir dir;
  std::vector<QualifiedKey> keys{QK("x"), QK("y")};
  auto none = dir.GetAltSkip(keys);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  ASSERT_TRUE(dir.Put(QK("x"), B(1)).ok());
  auto hit = dir.GetAltSkip(keys);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->first, QK("x"));
}

TEST(FolderTest, GetAltNondeterministicAcrossEligible) {
  // When both folders hold values, both must be picked over many trials.
  std::set<std::uint64_t> picked;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Dir dir(seed);
    (void)dir.Put(QK("a"), B(1));
    (void)dir.Put(QK("b"), B(2));
    std::vector<QualifiedKey> keys{QK("a"), QK("b")};
    auto hit = dir.GetAlt(keys);
    ASSERT_TRUE(hit.ok());
    picked.insert(hit->first.key.Hash());
  }
  EXPECT_EQ(picked.size(), 2u);
}

TEST(FolderTest, UnorderedExtractionVariesWithSeed) {
  // Three memos in one folder: extraction order differs across seeds, so no
  // caller can accidentally depend on FIFO.
  std::set<std::string> orders;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Dir dir(seed);
    for (std::uint8_t v = 1; v <= 3; ++v) (void)dir.Put(QK("f"), B(v));
    std::string order;
    for (int i = 0; i < 3; ++i) {
      order += static_cast<char>('0' + (*dir.Get(QK("f")))[0]);
    }
    orders.insert(order);
  }
  EXPECT_GT(orders.size(), 1u);
}

TEST(FolderTest, PutDelayedHidesUntilTrigger) {
  // Sec. 6.1.2: the delayed value is invisible in key1 and lands in key2
  // when the next memo arrives in key1.
  Dir dir;
  ASSERT_TRUE(dir.PutDelayed(QK("future"), QK("jar"), B(42)).ok());
  EXPECT_EQ(dir.Count(QK("future")), 0u);  // hidden, not extractable
  EXPECT_EQ(dir.Count(QK("jar")), 0u);

  ASSERT_TRUE(dir.Put(QK("future"), B(7)).ok());  // the trigger
  EXPECT_EQ(dir.Count(QK("future")), 1u);  // trigger itself is extractable
  EXPECT_EQ(dir.Count(QK("jar")), 1u);     // delayed value released
  EXPECT_EQ(*dir.Get(QK("jar")), B(42));
}

TEST(FolderTest, PutDelayedChainsThroughFolders) {
  // A released memo landing in key2 can itself trigger a delayed put parked
  // on key2 — dataflow chains (Sec. 6.3.3).
  Dir dir;
  ASSERT_TRUE(dir.PutDelayed(QK("s1"), QK("s2"), B(1)).ok());
  ASSERT_TRUE(dir.PutDelayed(QK("s2"), QK("s3"), B(2)).ok());
  ASSERT_TRUE(dir.PutDelayed(QK("s3"), QK("s4"), B(3)).ok());
  ASSERT_TRUE(dir.Put(QK("s1"), B(0)).ok());  // fires the whole chain
  EXPECT_EQ(dir.Count(QK("s2")), 1u);
  EXPECT_EQ(dir.Count(QK("s3")), 1u);
  EXPECT_EQ(dir.Count(QK("s4")), 1u);
}

TEST(FolderTest, PutDelayedWakesBlockedConsumerOfDestination) {
  Dir dir;
  ASSERT_TRUE(dir.PutDelayed(QK("trigger"), QK("result"), B(11)).ok());
  std::thread consumer([&] {
    auto v = dir.Get(QK("result"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, B(11));
  });
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(dir.Put(QK("trigger"), B(0)).ok());
  consumer.join();
}

TEST(FolderTest, GetCopyForTimesOutAndThenDelivers) {
  Dir dir;
  auto none = dir.GetCopyFor(QK("slow"), 30ms);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(dir.Put(QK("slow"), B(6)).ok());
  });
  auto v = dir.GetCopyFor(QK("slow"), 2000ms);
  producer.join();
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, B(6));
  EXPECT_EQ(dir.Count(QK("slow")), 1u);  // copy, not extraction
}

TEST(FolderTest, GetAltForTimesOutAndThenDelivers) {
  Dir dir;
  std::vector<QualifiedKey> keys{QK("a1"), QK("a2")};
  auto none = dir.GetAltFor(keys, 30ms);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(dir.Put(QK("a2"), B(9)).ok());
  });
  auto hit = dir.GetAltFor(keys, 2000ms);
  producer.join();
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((*hit)->first, QK("a2"));
  EXPECT_EQ((*hit)->second, B(9));
}

TEST(FolderTest, GetForDeliversJustBeforeDeadline) {
  Dir dir;
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(dir.Put(QK("deadline"), B(2)).ok());
  });
  auto v = dir.GetFor(QK("deadline"), 2000ms);
  producer.join();
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, B(2));
  EXPECT_EQ(dir.Count(QK("deadline")), 0u);  // extraction
}

TEST(FolderTest, FolderVanishesWhenEmptied) {
  // "The folder will vanish once the memo is removed."
  Dir dir;
  ASSERT_TRUE(dir.Put(QK("once"), B(1)).ok());
  EXPECT_EQ(dir.FolderCount(), 1u);
  ASSERT_TRUE(dir.Get(QK("once")).ok());
  EXPECT_EQ(dir.FolderCount(), 0u);
  EXPECT_EQ(dir.GetStats().folders_vanished, 1u);
}

TEST(FolderTest, FolderWithParkedDelayedDoesNotVanish) {
  Dir dir;
  ASSERT_TRUE(dir.PutDelayed(QK("f"), QK("g"), B(1)).ok());
  EXPECT_EQ(dir.FolderCount(), 1u);  // parked delayed memo keeps it alive
}

TEST(FolderTest, CloseWakesAllBlockedGetters) {
  Dir dir;
  std::vector<std::thread> consumers;
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&dir, &cancelled, i] {
      auto v = dir.Get(QK("never", i));
      if (v.status().code() == StatusCode::kCancelled) {
        cancelled.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(30ms);
  dir.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(cancelled.load(), 4);
  EXPECT_EQ(dir.Put(QK("f"), B(1)).code(), StatusCode::kCancelled);
}

TEST(FolderTest, StatsTrackOperations) {
  Dir dir;
  (void)dir.Put(QK("a"), B(1));
  (void)dir.Put(QK("a"), B(2));
  (void)dir.PutDelayed(QK("a"), QK("b"), B(3));
  (void)dir.Get(QK("a"));
  (void)dir.GetCopy(QK("a"));
  auto stats = dir.GetStats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.delayed_puts, 1u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.copies, 1u);
  EXPECT_EQ(stats.folders_created, 1u);
}

TEST(FolderTest, ManyProducersManyConsumers) {
  Dir dir;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(dir.Put(QK("work"), B(1)).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto v = dir.Get(QK("work"));
        ASSERT_TRUE(v.ok());
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(dir.Count(QK("work")), 0u);
}

// Property sweep: counts are conserved for any interleaving of puts/gets.
class FolderConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FolderConservationTest, PutGetConservation) {
  const int n = GetParam();
  Dir dir(static_cast<std::uint64_t>(n) * 977);
  std::set<std::uint8_t> put_values;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<std::uint8_t>(i);
    put_values.insert(v);
    ASSERT_TRUE(dir.Put(QK("f"), B(v)).ok());
  }
  EXPECT_EQ(dir.Count(QK("f")), static_cast<std::size_t>(n));
  std::set<std::uint8_t> got_values;
  for (int i = 0; i < n; ++i) {
    auto v = dir.Get(QK("f"));
    ASSERT_TRUE(v.ok());
    got_values.insert((*v)[0]);
  }
  EXPECT_EQ(got_values, put_values);  // every memo exactly once
  EXPECT_EQ(dir.FolderCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FolderConservationTest,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 255));

}  // namespace
}  // namespace dmemo
