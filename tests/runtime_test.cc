// Tests for the runtime layer: the in-process Cluster, launcher URL and
// environment plumbing, the on-demand server start (inetd substitute) and a
// full multi-process boss/worker application launched from an ADF — the
// paper's Sec. 4.4 flow end to end.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>

#include "runtime/cluster.h"
#include "runtime/launcher.h"
#include "transferable/scalars.h"

#ifndef DMEMO_TEST_APP_BINARY
#define DMEMO_TEST_APP_BINARY ""
#endif
#ifndef DMEMO_SERVER_BINARY
#define DMEMO_SERVER_BINARY ""
#endif

namespace dmemo {
namespace {

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

TEST(ClusterTest, StartsServersAndServesClients) {
  auto cluster = Cluster::Start(Adf(
      "APP c\nHOSTS\nalpha 1 alpha 1\nbeta 1 i486 1\n"
      "FOLDERS\n0 alpha\n1 beta\nPPC\nalpha <-> beta 1\n"));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  auto producer = (*cluster)->Client("alpha");
  auto consumer = (*cluster)->Client("beta");
  ASSERT_TRUE(producer.ok());
  ASSERT_TRUE(consumer.ok());
  ASSERT_TRUE(producer->put(Key::Named("x"), MakeInt32(7)).ok());
  auto v = consumer->get(Key::Named("x"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(IntOf(*v), 7);
}

TEST(ClusterTest, ClientProfileComesFromAdfArch) {
  // beta is declared i486: wide values must be refused delivery there.
  auto cluster = Cluster::Start(Adf(
      "APP c2\nHOSTS\nalpha 1 alpha 1\nbeta 1 i486 1\n"
      "FOLDERS\n0 alpha\n1 beta\nPPC\nalpha <-> beta 1\n"));
  ASSERT_TRUE(cluster.ok());
  auto alpha = (*cluster)->Client("alpha");
  auto beta = (*cluster)->Client("beta");
  ASSERT_TRUE(alpha.ok());
  ASSERT_TRUE(beta.ok());
  ASSERT_TRUE(alpha->put(Key::Named("wide"), MakeInt64(1 << 20)).ok());
  EXPECT_EQ(beta->get(Key::Named("wide")).status().code(),
            StatusCode::kDataLoss);
}

TEST(ClusterTest, UnknownHostRejected) {
  auto cluster = Cluster::Start(
      Adf("APP c3\nHOSTS\nalpha 1 t 1\nFOLDERS\n0 alpha\n"));
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->Client("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(ClusterTest, SecondApplicationSharesServers) {
  // Sec. 4.3: the same memo and folder servers are shared over the network
  // by multiple applications.
  auto cluster = Cluster::Start(
      Adf("APP first\nHOSTS\nalpha 1 t 1\nFOLDERS\n0 alpha\n"));
  ASSERT_TRUE(cluster.ok());
  AppDescription second =
      Adf("APP second\nHOSTS\nalpha 1 t 1\nFOLDERS\n0 alpha\n");
  ASSERT_TRUE((*cluster)->RegisterApp(second).ok());

  RemoteEngineOptions opts;
  opts.app = "second";
  opts.host = "alpha";
  auto engine = MakeRemoteEngine((*cluster)->transport(),
                                 "sim://alpha", opts);
  ASSERT_TRUE(engine.ok());
  Memo memo2(std::move(*engine));
  ASSERT_TRUE(memo2.put(Key::Named("y"), MakeInt32(1)).ok());

  // The first app's namespace is not polluted.
  auto first_client = (*cluster)->Client("alpha");
  ASSERT_TRUE(first_client.ok());
  EXPECT_EQ(*first_client->count(Key::Named("y")), 0u);
}

TEST(LauncherTest, ServerUrlIsPerHost) {
  EXPECT_EQ(ServerUrlFor("/tmp", "hostA"),
            "unix:///tmp/dmemo-server-hostA.sock");
  EXPECT_NE(ServerUrlFor("/tmp", "a"), ServerUrlFor("/tmp", "b"));
}

TEST(LauncherTest, ConnectFromEnvironmentRequiresContract) {
  ::unsetenv(kEnvApp);
  ::unsetenv(kEnvServerUrl);
  EXPECT_EQ(ConnectFromEnvironment().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ProcessIdFromEnvironment(), -1);
}

TEST(LauncherTest, EnsureServerFailsWithoutBinaryOrServer) {
  auto transport = TransportMux::CreateDefault();
  LaunchOptions options;  // no server_binary
  auto result = EnsureServerRunning(
      transport, "ghost", "unix:///tmp/dmemo-no-such-server.sock", {},
      options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

class MultiProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(DMEMO_TEST_APP_BINARY).empty() ||
        std::string(DMEMO_SERVER_BINARY).empty()) {
      GTEST_SKIP() << "helper binaries not configured";
    }
    dir_ = "/tmp/dmemo_mp_test_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    ::mkdir((dir_ + "/app").c_str(), 0755);
    // The paper's convention: standard executable names boss and worker in
    // the process directory. One binary plays both roles.
    ASSERT_EQ(
        ::symlink(DMEMO_TEST_APP_BINARY, (dir_ + "/app/boss").c_str()), 0);
    ASSERT_EQ(
        ::symlink(DMEMO_TEST_APP_BINARY, (dir_ + "/app/worker").c_str()), 0);
  }

  void TearDown() override {
    if (!dir_.empty()) {
      std::string cmd = "rm -rf '" + dir_ + "'";
      (void)std::system(cmd.c_str());
    }
  }

  std::string dir_;
};

#ifndef DMEMO_MEMO_CLI_BINARY
#define DMEMO_MEMO_CLI_BINARY ""
#endif

TEST_F(MultiProcessTest, MemoCliLaunchesTheApplication) {
  // The paper's "memo adf" command, end to end through the real binary.
  if (std::string(DMEMO_MEMO_CLI_BINARY).empty()) {
    GTEST_SKIP() << "memo CLI not configured";
  }
  const std::string adf_path = dir_ + "/app.adf";
  {
    std::ofstream adf(adf_path);
    adf << "APP clitest\n"
        << "HOSTS\ncli0 1 sun4 1\ncli1 1 sun4 1\n"
        << "FOLDERS\n0 cli0\n1 cli1\n"
        << "PROCESSES\n0 " << dir_ << "/app cli0\n"
        << "1 " << dir_ << "/app cli1\n"
        << "2 " << dir_ << "/app cli1\n"
        << "PPC\ncli0 <-> cli1 1\n";
  }
  const std::string cmd = std::string(DMEMO_MEMO_CLI_BINARY) + " " +
                          adf_path + " --server-binary " +
                          DMEMO_SERVER_BINARY + " --socket-dir " + dir_ +
                          " --stop-servers 2>/dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
}

TEST_F(MultiProcessTest, MakeRebuildRunsBeforeSpawn) {
  // Sec. 4.4: "If the binaries are out of date, they will be recompiled."
  // The app directory's Makefile produces the worker (here: by copying the
  // prebuilt helper); without --make the launch would fail because no
  // worker executable exists yet.
  const std::string build_dir = dir_ + "/buildme";
  ::mkdir(build_dir.c_str(), 0755);
  {
    std::ofstream makefile(build_dir + "/Makefile");
    makefile << "all: boss worker\n"
             << "boss:\n\tcp " << DMEMO_TEST_APP_BINARY << " boss\n"
             << "worker:\n\tcp " << DMEMO_TEST_APP_BINARY << " worker\n";
  }
  const std::string adf_text =
      "APP maketest\nHOSTS\nmk0 1 sun4 1\nmk1 1 sun4 1\n"
      "FOLDERS\n0 mk0\n1 mk1\n"
      "PROCESSES\n0 " + build_dir + " mk0\n1 " + build_dir + " mk1\n"
      "2 " + build_dir + " mk1\n"
      "PPC\nmk0 <-> mk1 1\n";
  auto parsed = ParseAdf(adf_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  LaunchOptions options;
  options.socket_dir = dir_;
  options.server_binary = DMEMO_SERVER_BINARY;
  options.stop_spawned_servers = true;
  options.run_make = true;
  auto report = RunApplication(parsed->description, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->AllSucceeded());
  // The Makefile really produced the executables.
  EXPECT_EQ(::access((build_dir + "/boss").c_str(), X_OK), 0);
  EXPECT_EQ(::access((build_dir + "/worker").c_str(), X_OK), 0);
}

TEST_F(MultiProcessTest, FullBossWorkerApplication) {
  // Three "machines" on one host, each its own memo-server process; a boss
  // and two workers started per the ADF; job-jar arithmetic must check out.
  const std::string adf_text =
      "APP mptest\n"
      "HOSTS\n"
      "m0 1 sun4 1\nm1 1 sun4 1\nm2 1 sun4 1\n"
      "FOLDERS\n0 m0\n1 m1\n2 m2\n"
      "PROCESSES\n"
      "0 " + dir_ + "/app m0\n"
      "1 " + dir_ + "/app m1\n"
      "2 " + dir_ + "/app m2\n"
      "PPC\nm0 <-> m1 1\nm1 <-> m2 1\nm0 <-> m2 1\n";
  auto parsed = ParseAdf(adf_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  LaunchOptions options;
  options.socket_dir = dir_;
  options.server_binary = DMEMO_SERVER_BINARY;
  options.stop_spawned_servers = true;
  auto report = RunApplication(parsed->description, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->processes.size(), 3u);
  for (const auto& proc : report->processes) {
    EXPECT_EQ(proc.exit_code, 0) << "process " << proc.proc_id << " ("
                                 << proc.executable << ")";
  }
  EXPECT_TRUE(report->AllSucceeded());
}

}  // namespace
}  // namespace dmemo
