// Cross-module integration: full applications over real kernel transports,
// the pumped-executable launch mode, the dataflow engine over the remote
// engine, and a miniature version of the paper's `invert` workload run as
// an assertion-checked test.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <thread>

#include "lang/dataflow.h"
#include "patterns/patterns.h"
#include "runtime/cluster.h"
#include "runtime/launcher.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

#ifndef DMEMO_TEST_APP_BINARY
#define DMEMO_TEST_APP_BINARY ""
#endif
#ifndef DMEMO_SERVER_BINARY
#define DMEMO_SERVER_BINARY ""
#endif

namespace dmemo {
namespace {

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

AppDescription Adf(const std::string& text) {
  auto parsed = ParseAdf(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed->description;
}

TEST(TcpClusterTest, FullWorkloadOverRealSockets) {
  auto cluster = Cluster::StartLoopbackTcp(Adf(
      "APP tcp\nHOSTS\nnode1 1 t 1\nnode2 1 t 1\n"
      "FOLDERS\n0 node1\n1 node2\nPPC\nnode1 <-> node2 1\n"));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  Memo producer = *(*cluster)->Client("node1", MachineProfile::Universal());
  Memo consumer = *(*cluster)->Client("node2", MachineProfile::Universal());

  // Traffic over genuine TCP: scalars, structures, blocking hand-offs.
  for (std::uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(producer
                    .put(Key::Named("d", {i}),
                         MakeInt32(static_cast<int>(i * 3)))
                    .ok());
  }
  for (std::uint32_t i = 0; i < 32; ++i) {
    auto v = consumer.get(Key::Named("d", {i}));
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(IntOf(*v), static_cast<int>(i * 3));
  }

  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto v = consumer.get(Key::Named("handoff"));
    ASSERT_TRUE(v.ok());
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(producer.put(Key::Named("handoff"), MakeInt32(1)).ok());
  waiter.join();
}

TEST(TcpClusterTest, JobJarWorkersOverTcp) {
  auto cluster = Cluster::StartLoopbackTcp(Adf(
      "APP tcpjar\nHOSTS\nnode1 1 t 1\nnode2 1 t 1\n"
      "FOLDERS\n0 node1\n1 node2\nPPC\nnode1 <-> node2 1\n"));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  Memo boss = *(*cluster)->Client("node1", MachineProfile::Universal());
  constexpr int kTasks = 40;
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    Memo memo = *(*cluster)->Client(w % 2 == 0 ? "node1" : "node2",
                                    MachineProfile::Universal());
    workers.emplace_back([memo]() mutable {
      for (;;) {
        auto task = memo.get(Key::Named("jar"));
        if (!task.ok() || *task == nullptr) return;
        const int v = IntOf(*task);
        if (!memo.put(Key::Named("out"), MakeInt32(v * v)).ok()) return;
      }
    });
  }
  for (int t = 0; t < kTasks; ++t) {
    ASSERT_TRUE(boss.put(Key::Named("jar"), MakeInt32(t)).ok());
  }
  long long sum = 0;
  for (int t = 0; t < kTasks; ++t) {
    auto v = boss.get(Key::Named("out"));
    ASSERT_TRUE(v.ok());
    sum += IntOf(*v);
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    ASSERT_TRUE(boss.put(Key::Named("jar"), nullptr).ok());
  }
  for (auto& w : workers) w.join();
  long long expected = 0;
  for (int t = 0; t < kTasks; ++t) expected += 1LL * t * t;
  EXPECT_EQ(sum, expected);
}

TEST(DataflowRemoteTest, GraphRunsOverTheWire) {
  // The dataflow engine is engine-agnostic: run it against a remote Memo so
  // every trigger and counter round-trips through the memo server.
  auto cluster = Cluster::Start(
      Adf("APP dfr\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n"));
  ASSERT_TRUE(cluster.ok());
  Memo memo = *(*cluster)->Client("hostA", MachineProfile::Universal());
  DataflowGraph graph(memo);
  NodeId a = graph.AddInput();
  NodeId b = graph.AddInput();
  NodeId sum = graph.AddNode(
      [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
        return MakeInt32(IntOf(args[0]) + IntOf(args[1]));
      },
      {a, b});
  NodeId twice = graph.AddNode(
      [](std::span<const TransferablePtr> args) -> Result<TransferablePtr> {
        return MakeInt32(2 * IntOf(args[0]));
      },
      {sum});
  ASSERT_TRUE(graph.Start(2).ok());
  ASSERT_TRUE(graph.Feed(a, MakeInt32(20)).ok());
  ASSERT_TRUE(graph.Feed(b, MakeInt32(22)).ok());
  auto v = graph.Await(twice);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(IntOf(*v), 84);
}

// Mini-invert: the paper's flagship workload as a checked test over the
// paper's own ADF (in-process cluster).
TEST(InvertWorkloadTest, GaussJordanAcrossTheInvertTopology) {
  auto cluster = Cluster::Start(Adf(
      "APP invert\nHOSTS\n"
      "glen 1 sun4 1\naurora 1 sun4 1\nbonnie 128 sp1 sun4*0.5\n"
      "FOLDERS\n0 glen\n1 aurora\n2-4 bonnie\n"
      "PPC\nglen <-> aurora 1\nglen <-> bonnie 2\n"));
  ASSERT_TRUE(cluster.ok());
  constexpr int n = 8;
  Memo boss = *(*cluster)->Client("glen", MachineProfile::Universal());

  auto row_of = [](const TransferablePtr& v) {
    return std::static_pointer_cast<TVecFloat64>(v)->values();
  };
  Key rows = Key::Named("rows");
  // [A | I] with a diagonally dominant A.
  std::vector<std::vector<double>> a(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a[i][j] = i == j ? n + 2.0 : 1.0;
  }
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(2 * n, 0.0);
    for (int j = 0; j < n; ++j) row[j] = a[i][j];
    row[n + i] = 1.0;
    ASSERT_TRUE(boss.put(Key(rows.S, {static_cast<std::uint32_t>(i)}),
                         MakeVecFloat64(std::move(row)))
                    .ok());
  }

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    Memo memo = *(*cluster)->Client("bonnie", MachineProfile::Universal());
    workers.emplace_back([memo, rows]() mutable {
      for (;;) {
        auto task = memo.get(Key::Named("tasks"));
        if (!task.ok() || *task == nullptr) return;
        auto rec = std::static_pointer_cast<TRecord>(*task);
        const auto pivot = static_cast<std::uint32_t>(
            IntOf(rec->Get("pivot")));
        const auto row = static_cast<std::uint32_t>(IntOf(rec->Get("row")));
        auto pv = std::static_pointer_cast<TVecFloat64>(
                      *memo.get_copy(Key(rows.S, {pivot})))
                      ->values();
        auto tv = std::static_pointer_cast<TVecFloat64>(
                      *memo.get(Key(rows.S, {row})))
                      ->values();
        const double factor = tv[pivot];
        for (std::size_t j = 0; j < tv.size(); ++j) tv[j] -= factor * pv[j];
        (void)memo.put(Key(rows.S, {row}), MakeVecFloat64(std::move(tv)));
        (void)memo.put(Key::Named("done"), MakeInt32(1));
      }
    });
  }

  for (int pivot = 0; pivot < n; ++pivot) {
    Key pk(rows.S, {static_cast<std::uint32_t>(pivot)});
    auto row = row_of(*boss.get(pk));
    const double d = row[static_cast<std::size_t>(pivot)];
    for (double& x : row) x /= d;
    ASSERT_TRUE(boss.put(pk, MakeVecFloat64(std::move(row))).ok());
    int outstanding = 0;
    for (int r = 0; r < n; ++r) {
      if (r == pivot) continue;
      auto task = std::make_shared<TRecord>();
      task->Set("pivot", MakeInt32(pivot));
      task->Set("row", MakeInt32(r));
      ASSERT_TRUE(boss.put(Key::Named("tasks"), task).ok());
      ++outstanding;
    }
    for (int i = 0; i < outstanding; ++i) {
      ASSERT_TRUE(boss.get(Key::Named("done")).ok());
    }
  }
  for (std::size_t w = 0; w < workers.size(); ++w) {
    ASSERT_TRUE(boss.put(Key::Named("tasks"), nullptr).ok());
  }
  for (auto& t : workers) t.join();

  // Check A * inv = I.
  std::vector<std::vector<double>> inv(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    auto row = row_of(*boss.get(Key(rows.S, {static_cast<std::uint32_t>(i)})));
    for (int j = 0; j < n; ++j) inv[i][j] = row[n + j];
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = 0;
      for (int k = 0; k < n; ++k) dot += a[i][k] * inv[k][j];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
}

TEST(ConcurrentAppsTest, TwoApplicationsShareOneServerFarm) {
  // Sec. 4.3: "the same memo and folder servers can be shared over the
  // network... each memo server is loaded with unique routing tables for
  // each application." Two applications with clashing folder names run
  // concurrent workloads through one farm without crosstalk.
  auto cluster = Cluster::Start(Adf(
      "APP appA\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n"));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)
                  ->RegisterApp(Adf(
                      "APP appB\nHOSTS\nhostA 1 t 1\nhostB 1 t 1\n"
                      "FOLDERS\n0 hostA\n1 hostB\nPPC\nhostA <-> hostB 1\n"))
                  .ok());
  auto client_for = [&](const std::string& app) {
    RemoteEngineOptions opts;
    opts.app = app;
    opts.host = "hostA";
    auto engine =
        MakeRemoteEngine((*cluster)->transport(), "sim://hostA", opts);
    EXPECT_TRUE(engine.ok());
    return Memo(std::move(*engine));
  };

  constexpr int kPerApp = 100;
  std::thread worker_a([&] {
    Memo memo = client_for("appA");
    for (std::uint32_t i = 0; i < kPerApp; ++i) {
      ASSERT_TRUE(memo.put(Key::Named("shared-name", {i}),
                           MakeInt32(static_cast<int>(i)))
                      .ok());
    }
  });
  std::thread worker_b([&] {
    Memo memo = client_for("appB");
    for (std::uint32_t i = 0; i < kPerApp; ++i) {
      ASSERT_TRUE(memo.put(Key::Named("shared-name", {i}),
                           MakeInt32(static_cast<int>(1000 + i)))
                      .ok());
    }
  });
  worker_a.join();
  worker_b.join();

  Memo a = client_for("appA");
  Memo b = client_for("appB");
  for (std::uint32_t i = 0; i < kPerApp; ++i) {
    auto va = a.get(Key::Named("shared-name", {i}));
    auto vb = b.get(Key::Named("shared-name", {i}));
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(vb.ok());
    EXPECT_EQ(IntOf(*va), static_cast<int>(i));
    EXPECT_EQ(IntOf(*vb), static_cast<int>(1000 + i));
  }
}

class PumpedLaunchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(DMEMO_TEST_APP_BINARY).empty() ||
        std::string(DMEMO_SERVER_BINARY).empty()) {
      GTEST_SKIP() << "helper binaries not configured";
    }
    dir_ = "/tmp/dmemo_pump_test_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    ::mkdir((dir_ + "/app").c_str(), 0755);
    ASSERT_EQ(
        ::symlink(DMEMO_TEST_APP_BINARY, (dir_ + "/app/boss").c_str()), 0);
    ASSERT_EQ(
        ::symlink(DMEMO_TEST_APP_BINARY, (dir_ + "/app/worker").c_str()), 0);
  }
  void TearDown() override {
    if (!dir_.empty()) {
      (void)std::system(("rm -rf '" + dir_ + "'").c_str());
    }
  }
  std::string dir_;
};

TEST_F(PumpedLaunchTest, ExecutablesArePumpedToPerHostDirs) {
  // The paper's announced pumping mode: no shared filesystem assumed; the
  // launcher copies binaries into each machine's local staging directory.
  const std::string adf_text =
      "APP pump\nHOSTS\nm0 1 sun4 1\nm1 1 sun4 1\n"
      "FOLDERS\n0 m0\n1 m1\n"
      "PROCESSES\n0 " + dir_ + "/app m0\n1 " + dir_ + "/app m1\n"
      "2 " + dir_ + "/app m1\n"
      "PPC\nm0 <-> m1 1\n";
  auto parsed = ParseAdf(adf_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  LaunchOptions options;
  options.socket_dir = dir_;
  options.server_binary = DMEMO_SERVER_BINARY;
  options.stop_spawned_servers = true;
  options.pump_dir = dir_ + "/pumped";
  auto report = RunApplication(parsed->description, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->AllSucceeded());

  // The pumped copies exist per host and were what actually ran.
  struct stat st{};
  EXPECT_EQ(::stat((options.pump_dir + "/m0/boss").c_str(), &st), 0);
  EXPECT_EQ(::stat((options.pump_dir + "/m1/worker").c_str(), &st), 0);
  for (const auto& proc : report->processes) {
    EXPECT_EQ(proc.executable.find(options.pump_dir), 0u)
        << proc.executable;
  }
}

}  // namespace
}  // namespace dmemo
