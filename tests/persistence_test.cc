// Persistence tests (Sec. 3.1.3: "We believe the support for persistent
// data structures is essential to develop serious parallel software
// applications"): directory snapshots, folder-server files, and a full
// memo-server restart cycle with the memo space surviving.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <thread>

#include "core/memo.h"
#include "core/remote_engine.h"
#include "folder/directory.h"
#include "server/memo_server.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"

namespace dmemo {
namespace {

QualifiedKey QK(const std::string& name, std::uint32_t i = 0) {
  return QualifiedKey{"app", Key::Named(name, {i})};
}

TEST(DirectorySnapshotTest, RoundTripPreservesVisibleAndDelayed) {
  FolderDirectory<Bytes> dir;
  ASSERT_TRUE(dir.Put(QK("a"), Bytes{1}).ok());
  ASSERT_TRUE(dir.Put(QK("a"), Bytes{2}).ok());
  ASSERT_TRUE(dir.Put(QK("b", 7), Bytes{3}).ok());
  ASSERT_TRUE(dir.PutDelayed(QK("trigger"), QK("dest"), Bytes{4}).ok());

  ByteWriter out;
  dir.SnapshotTo(out);

  FolderDirectory<Bytes> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());

  EXPECT_EQ(restored.Count(QK("a")), 2u);
  EXPECT_EQ(restored.Count(QK("b", 7)), 1u);
  EXPECT_EQ(restored.Count(QK("dest")), 0u);  // still parked
  // The delayed put still fires on arrival.
  ASSERT_TRUE(restored.Put(QK("trigger"), Bytes{9}).ok());
  EXPECT_EQ(restored.Count(QK("dest")), 1u);
  EXPECT_EQ(*restored.Get(QK("dest")), Bytes{4});
}

TEST(DirectorySnapshotTest, TransferableDirectoryPreservesGraphs) {
  FolderDirectory<TransferablePtr> dir;
  auto rec = std::make_shared<TRecord>();
  rec->Set("name", MakeString("cyclic"));
  rec->Set("self", rec);
  ASSERT_TRUE(dir.Put(QK("g"), rec).ok());

  ByteWriter out;
  dir.SnapshotTo(out);
  FolderDirectory<TransferablePtr> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());

  auto v = restored.Get(QK("g"));
  ASSERT_TRUE(v.ok());
  auto got = std::static_pointer_cast<TRecord>(*v);
  EXPECT_EQ(got->Get("self").get(), got.get());  // cycle survived disk-form
  ReleaseGraph(got);
  ReleaseGraph(rec);
}

TEST(DirectorySnapshotTest, EmptyDirectorySnapshotIsValid) {
  FolderDirectory<Bytes> dir;
  ByteWriter out;
  dir.SnapshotTo(out);
  FolderDirectory<Bytes> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());
  EXPECT_EQ(restored.FolderCount(), 0u);
}

TEST(DirectorySnapshotTest, GarbageRejected) {
  FolderDirectory<Bytes> dir;
  Bytes junk{1, 2, 3, 4, 5, 6, 7, 8};
  ByteReader in(junk);
  EXPECT_EQ(dir.RestoreFrom(in).code(), StatusCode::kDataLoss);
}

TEST(DirectorySnapshotTest, RestoreWakesParkedGet) {
  FolderDirectory<Bytes> source;
  ASSERT_TRUE(source.Put(QK("wake"), Bytes{5}).ok());
  ByteWriter out;
  source.SnapshotTo(out);

  FolderDirectory<Bytes> dir;
  std::thread parked([&] {
    auto v = dir.Get(QK("wake"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, Bytes{5});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ByteReader in(out.data());
  ASSERT_TRUE(dir.RestoreFrom(in).ok());
  parked.join();
}

class ServerPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dmemo_persist_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    (void)std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  AppDescription Adf() {
    auto parsed = ParseAdf("APP pa\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
    EXPECT_TRUE(parsed.ok());
    return parsed->description;
  }

  std::unique_ptr<MemoServer> StartServer(SimNetworkPtr network) {
    MemoServerOptions opts;
    opts.host = "hostA";
    opts.listen_url = "sim://hostA";
    opts.peers = {{"hostA", "sim://hostA"}};
    opts.persist_dir = dir_;
    auto server = MemoServer::Start(MakeSimTransport(network), opts);
    EXPECT_TRUE(server.ok()) << server.status();
    EXPECT_TRUE((*server)->RegisterApp(Adf()).ok());
    return std::move(*server);
  }

  Memo Client(SimNetworkPtr network) {
    RemoteEngineOptions opts;
    opts.app = "pa";
    opts.host = "hostA";
    auto engine =
        MakeRemoteEngine(MakeSimTransport(network), "sim://hostA", opts);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return Memo(std::move(*engine));
  }

  std::string dir_;
};

TEST_F(ServerPersistenceTest, MemoSpaceSurvivesServerRestart) {
  // First incarnation: deposit memos, shut down (snapshot written).
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network);
    Memo memo = Client(network);
    ASSERT_TRUE(memo.put(Key::Named("persisted"), MakeInt32(41)).ok());
    ASSERT_TRUE(memo.put(Key::Named("persisted"), MakeInt32(42)).ok());
    ASSERT_TRUE(memo.put_delayed(Key::Named("fut"), Key::Named("jar"),
                                 MakeString("op"))
                    .ok());
    server->Shutdown();
  }
  struct stat st{};
  ASSERT_EQ(::stat((dir_ + "/fs-0.dmemo").c_str(), &st), 0)
      << "snapshot file missing";

  // Second incarnation: the memo space is back, including the parked
  // delayed put, which still fires.
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network);
    Memo memo = Client(network);
    EXPECT_EQ(*memo.count(Key::Named("persisted")), 2u);
    EXPECT_EQ(*memo.count(Key::Named("jar")), 0u);
    ASSERT_TRUE(memo.put(Key::Named("fut"), MakeInt32(0)).ok());
    EXPECT_EQ(*memo.count(Key::Named("jar")), 1u);
    auto op = memo.get(Key::Named("jar"));
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(std::static_pointer_cast<TString>(*op)->value(), "op");
    server->Shutdown();
  }
}

TEST_F(ServerPersistenceTest, NoPersistDirMeansNoFiles) {
  auto network = std::make_shared<SimNetwork>();
  MemoServerOptions opts;
  opts.host = "hostA";
  opts.listen_url = "sim://hostA";
  opts.peers = {{"hostA", "sim://hostA"}};
  auto server = MemoServer::Start(MakeSimTransport(network), opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterApp(Adf()).ok());
  (*server)->Shutdown();
  struct stat st{};
  EXPECT_NE(::stat((dir_ + "/fs-0.dmemo").c_str(), &st), 0);
}

TEST_F(ServerPersistenceTest, CorruptSnapshotIsIgnoredNotFatal) {
  {
    std::ofstream junk(dir_ + "/fs-0.dmemo", std::ios::binary);
    junk << "this is not a snapshot";
  }
  auto network = std::make_shared<SimNetwork>();
  auto server = StartServer(network);  // must come up despite the junk
  Memo memo = Client(network);
  ASSERT_TRUE(memo.put(Key::Named("fresh"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("fresh")).ok());
  server->Shutdown();
}

}  // namespace
}  // namespace dmemo
