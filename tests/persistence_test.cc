// Persistence tests (Sec. 3.1.3: "We believe the support for persistent
// data structures is essential to develop serious parallel software
// applications"): directory snapshots, folder-server files, and a full
// memo-server restart cycle with the memo space surviving.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <thread>

#include "core/memo.h"
#include "core/remote_engine.h"
#include "folder/directory.h"
#include "server/folder_server.h"
#include "server/memo_server.h"
#include "transferable/codec.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"
#include "util/wal.h"

namespace dmemo {
namespace {

QualifiedKey QK(const std::string& name, std::uint32_t i = 0) {
  return QualifiedKey{"app", Key::Named(name, {i})};
}

TEST(DirectorySnapshotTest, RoundTripPreservesVisibleAndDelayed) {
  FolderDirectory<Bytes> dir;
  ASSERT_TRUE(dir.Put(QK("a"), Bytes{1}).ok());
  ASSERT_TRUE(dir.Put(QK("a"), Bytes{2}).ok());
  ASSERT_TRUE(dir.Put(QK("b", 7), Bytes{3}).ok());
  ASSERT_TRUE(dir.PutDelayed(QK("trigger"), QK("dest"), Bytes{4}).ok());

  ByteWriter out;
  dir.SnapshotTo(out);

  FolderDirectory<Bytes> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());

  EXPECT_EQ(restored.Count(QK("a")), 2u);
  EXPECT_EQ(restored.Count(QK("b", 7)), 1u);
  EXPECT_EQ(restored.Count(QK("dest")), 0u);  // still parked
  // The delayed put still fires on arrival.
  ASSERT_TRUE(restored.Put(QK("trigger"), Bytes{9}).ok());
  EXPECT_EQ(restored.Count(QK("dest")), 1u);
  EXPECT_EQ(*restored.Get(QK("dest")), Bytes{4});
}

TEST(DirectorySnapshotTest, TransferableDirectoryPreservesGraphs) {
  FolderDirectory<TransferablePtr> dir;
  auto rec = std::make_shared<TRecord>();
  rec->Set("name", MakeString("cyclic"));
  rec->Set("self", rec);
  ASSERT_TRUE(dir.Put(QK("g"), rec).ok());

  ByteWriter out;
  dir.SnapshotTo(out);
  FolderDirectory<TransferablePtr> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());

  auto v = restored.Get(QK("g"));
  ASSERT_TRUE(v.ok());
  auto got = std::static_pointer_cast<TRecord>(*v);
  EXPECT_EQ(got->Get("self").get(), got.get());  // cycle survived disk-form
  ReleaseGraph(got);
  ReleaseGraph(rec);
}

TEST(DirectorySnapshotTest, EmptyDirectorySnapshotIsValid) {
  FolderDirectory<Bytes> dir;
  ByteWriter out;
  dir.SnapshotTo(out);
  FolderDirectory<Bytes> restored;
  ByteReader in(out.data());
  ASSERT_TRUE(restored.RestoreFrom(in).ok());
  EXPECT_EQ(restored.FolderCount(), 0u);
}

TEST(DirectorySnapshotTest, GarbageRejected) {
  FolderDirectory<Bytes> dir;
  Bytes junk{1, 2, 3, 4, 5, 6, 7, 8};
  ByteReader in(junk);
  EXPECT_EQ(dir.RestoreFrom(in).code(), StatusCode::kDataLoss);
}

TEST(DirectorySnapshotTest, RestoreWakesParkedGet) {
  FolderDirectory<Bytes> source;
  ASSERT_TRUE(source.Put(QK("wake"), Bytes{5}).ok());
  ByteWriter out;
  source.SnapshotTo(out);

  FolderDirectory<Bytes> dir;
  std::thread parked([&] {
    auto v = dir.Get(QK("wake"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, Bytes{5});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ByteReader in(out.data());
  ASSERT_TRUE(dir.RestoreFrom(in).ok());
  parked.join();
}

class ServerPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/dmemo_persist_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }
  void TearDown() override {
    (void)std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  AppDescription Adf() {
    auto parsed = ParseAdf("APP pa\nHOSTS\nhostA 1 t 1\nFOLDERS\n0 hostA\n");
    EXPECT_TRUE(parsed.ok());
    return parsed->description;
  }

  std::unique_ptr<MemoServer> StartServer(SimNetworkPtr network) {
    MemoServerOptions opts;
    opts.host = "hostA";
    opts.listen_url = "sim://hostA";
    opts.peers = {{"hostA", "sim://hostA"}};
    opts.persist_dir = dir_;
    auto server = MemoServer::Start(MakeSimTransport(network), opts);
    EXPECT_TRUE(server.ok()) << server.status();
    EXPECT_TRUE((*server)->RegisterApp(Adf()).ok());
    return std::move(*server);
  }

  Memo Client(SimNetworkPtr network) {
    RemoteEngineOptions opts;
    opts.app = "pa";
    opts.host = "hostA";
    auto engine =
        MakeRemoteEngine(MakeSimTransport(network), "sim://hostA", opts);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return Memo(std::move(*engine));
  }

  std::string dir_;
};

TEST_F(ServerPersistenceTest, MemoSpaceSurvivesServerRestart) {
  // First incarnation: deposit memos, shut down (snapshot written).
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network);
    Memo memo = Client(network);
    ASSERT_TRUE(memo.put(Key::Named("persisted"), MakeInt32(41)).ok());
    ASSERT_TRUE(memo.put(Key::Named("persisted"), MakeInt32(42)).ok());
    ASSERT_TRUE(memo.put_delayed(Key::Named("fut"), Key::Named("jar"),
                                 MakeString("op"))
                    .ok());
    server->Shutdown();
  }
  struct stat st{};
  ASSERT_EQ(::stat((dir_ + "/fs-0.dmemo").c_str(), &st), 0)
      << "snapshot file missing";

  // Second incarnation: the memo space is back, including the parked
  // delayed put, which still fires.
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network);
    Memo memo = Client(network);
    EXPECT_EQ(*memo.count(Key::Named("persisted")), 2u);
    EXPECT_EQ(*memo.count(Key::Named("jar")), 0u);
    ASSERT_TRUE(memo.put(Key::Named("fut"), MakeInt32(0)).ok());
    EXPECT_EQ(*memo.count(Key::Named("jar")), 1u);
    auto op = memo.get(Key::Named("jar"));
    ASSERT_TRUE(op.ok());
    EXPECT_EQ(std::static_pointer_cast<TString>(*op)->value(), "op");
    server->Shutdown();
  }
}

TEST_F(ServerPersistenceTest, NoPersistDirMeansNoFiles) {
  auto network = std::make_shared<SimNetwork>();
  MemoServerOptions opts;
  opts.host = "hostA";
  opts.listen_url = "sim://hostA";
  opts.peers = {{"hostA", "sim://hostA"}};
  auto server = MemoServer::Start(MakeSimTransport(network), opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->RegisterApp(Adf()).ok());
  (*server)->Shutdown();
  struct stat st{};
  EXPECT_NE(::stat((dir_ + "/fs-0.dmemo").c_str(), &st), 0);
}

TEST_F(ServerPersistenceTest, CorruptSnapshotIsIgnoredNotFatal) {
  {
    std::ofstream junk(dir_ + "/fs-0.dmemo", std::ios::binary);
    junk << "this is not a snapshot";
  }
  auto network = std::make_shared<SimNetwork>();
  auto server = StartServer(network);  // must come up despite the junk
  Memo memo = Client(network);
  ASSERT_TRUE(memo.put(Key::Named("fresh"), MakeInt32(1)).ok());
  EXPECT_TRUE(memo.get(Key::Named("fresh")).ok());
  server->Shutdown();
}

// ---- WAL durability (DESIGN.md "Durability & liveness") ------------------

class WalPersistenceTest : public ServerPersistenceTest {
 protected:
  FolderServerDurability Durability() {
    FolderServerDurability d;
    d.snapshot_path = dir_ + "/w.dmemo";
    d.wal_path = dir_ + "/w.wal";
    return d;
  }

  Request Put(const std::string& name, int v, std::uint64_t rid) {
    Request r;
    r.op = Op::kPut;
    r.app = "wp";
    r.key = Key::Named(name);
    r.value = EncodeGraphToIoBuf(MakeInt32(v));
    r.request_id = rid;
    return r;
  }

  std::uint64_t CountOf(FolderServer& fs, const std::string& name) {
    return fs.directory().Count(QualifiedKey{"wp", Key::Named(name)});
  }
};

TEST_F(WalPersistenceTest, SnapshotPlusPartialWalReplay) {
  {
    FolderServer fs(0, "hostA");
    ASSERT_TRUE(fs.EnableDurability(Durability()).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(fs.Handle(Put("base", i, 1 + i)).code, StatusCode::kOk);
    }
    ASSERT_TRUE(fs.Checkpoint().ok());  // "base" now lives in the snapshot
    for (int i = 0; i < 2; ++i) {
      ASSERT_EQ(fs.Handle(Put("tail", i, 10 + i)).code, StatusCode::kOk);
    }
    // Crash without checkpoint: "tail" exists only in the WAL.
  }
  FolderServer recovered(0, "hostA");
  ASSERT_TRUE(recovered.EnableDurability(Durability()).ok());
  EXPECT_EQ(CountOf(recovered, "base"), 3u);
  EXPECT_EQ(CountOf(recovered, "tail"), 2u);
}

TEST_F(WalPersistenceTest, TruncatedWalTailRecoversCleanly) {
  {
    FolderServer fs(0, "hostA");
    ASSERT_TRUE(fs.EnableDurability(Durability()).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(fs.Handle(Put("t", i, 1 + i)).code, StatusCode::kOk);
    }
  }
  // Tear the tail: the crash happened mid-write of the last record.
  struct stat st{};
  ASSERT_EQ(::stat((dir_ + "/w.wal").c_str(), &st), 0);
  ASSERT_EQ(::truncate((dir_ + "/w.wal").c_str(), st.st_size - 3), 0);

  FolderServer recovered(0, "hostA");
  // A torn tail is the expected crash artifact, not corruption: recovery
  // succeeds with the complete prefix.
  ASSERT_TRUE(recovered.EnableDurability(Durability()).ok());
  EXPECT_EQ(CountOf(recovered, "t"), 3u);
}

TEST_F(WalPersistenceTest, EpochFloorLiftsRecoveredEpoch) {
  // A promoted backup opens with epoch_floor = standby epoch + 1 so it
  // lands strictly above any plain restart of the failed primary
  // (DESIGN.md §15). Recovery serves max(stored, floor) + 1.
  {
    FolderServer fs(0, "hostA");
    auto d = Durability();
    d.epoch_floor = 7;
    ASSERT_TRUE(fs.EnableDurability(d).ok());
    EXPECT_EQ(fs.epoch(), 8u);
  }
  // A floor below the stored epoch is a no-op: the stored value wins.
  FolderServer again(0, "hostA");
  auto d = Durability();
  d.epoch_floor = 3;
  ASSERT_TRUE(again.EnableDurability(d).ok());
  EXPECT_EQ(again.epoch(), 9u);
}

TEST_F(WalPersistenceTest, CorruptCrcStopsReplayLoudly) {
  {
    FolderServer fs(0, "hostA");
    ASSERT_TRUE(fs.EnableDurability(Durability()).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(fs.Handle(Put("x", i, 1 + i)).code, StatusCode::kOk);
    }
  }
  // Flip a byte inside the second record's body (not the tail — a mid-log
  // mismatch is corruption, never a torn write). Frame layout: 13-byte
  // file header, then per record a big-endian u32 body length + u32 CRC.
  const std::string wal = dir_ + "/w.wal";
  Bytes raw;
  {
    std::ifstream in(wal, std::ios::binary);
    raw.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  ASSERT_GT(raw.size(), 13u);
  const std::size_t rec1 = 13;
  const std::uint32_t len1 = (std::uint32_t(raw[rec1]) << 24) |
                             (std::uint32_t(raw[rec1 + 1]) << 16) |
                             (std::uint32_t(raw[rec1 + 2]) << 8) |
                             std::uint32_t(raw[rec1 + 3]);
  const std::size_t rec2 = rec1 + 8 + len1;
  ASSERT_LT(rec2 + 9, raw.size());
  raw[rec2 + 8] ^= 0xff;  // first body byte of record 2
  {
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }

  FolderServer recovered(0, "hostA");
  // Recovery comes up degraded (the prefix before the corruption) but the
  // error is surfaced loudly, and the bad log is set aside as .corrupt so
  // the next restart does not trip over it again.
  Status status = recovered.EnableDurability(Durability());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status;
  EXPECT_EQ(CountOf(recovered, "x"), 1u);
  struct stat st{};
  EXPECT_EQ(::stat((wal + ".corrupt").c_str(), &st), 0)
      << "corrupt WAL not set aside";
}

TEST_F(WalPersistenceTest, SnapshotFallsBackToPreviousGeneration) {
  const std::string path = dir_ + "/gen.dmemo";
  {
    FolderServer fs(0, "hostA");
    Request put = Put("gen", 1, 1);
    ASSERT_EQ(fs.Handle(put).code, StatusCode::kOk);
    ASSERT_TRUE(fs.SaveTo(path).ok());  // generation 1
    ASSERT_EQ(fs.Handle(Put("gen", 2, 2)).code, StatusCode::kOk);
    ASSERT_TRUE(fs.SaveTo(path).ok());  // generation 2; gen 1 -> .prev
  }
  {
    std::ofstream corrupt(path, std::ios::binary | std::ios::trunc);
    corrupt << "garbage";
  }
  FolderServer fs(0, "hostA");
  Status loaded = fs.LoadFrom(path);
  // The primary's corruption is surfaced, but the previous generation was
  // restored: one memo (generation 1), not zero and not two.
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(CountOf(fs, "gen"), 1u);
}

TEST_F(WalPersistenceTest, LoadFromSurfacesReadErrorDistinctFromMissing) {
  FolderServer fs(0, "hostA");
  // Absent file: a fresh server, not an error.
  EXPECT_TRUE(fs.LoadFrom(dir_ + "/never-written.dmemo").ok());
  // Unreadable file (a directory): an error, loudly distinct from ENOENT.
  const std::string blocked = dir_ + "/blocked.dmemo";
  ASSERT_EQ(::mkdir(blocked.c_str(), 0755), 0);
  Status status = fs.LoadFrom(blocked);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.code(), StatusCode::kNotFound) << status;
}

}  // namespace
}  // namespace dmemo
