// Tests for the Application Description File parser (Sec. 4.3), including
// the paper's own `invert` example verbatim.
#include <gtest/gtest.h>

#include "adf/adf.h"

namespace dmemo {
namespace {

// The ADF assembled from the fragments in Sec. 4.3 of the paper.
constexpr const char* kInvertAdf = R"(# Application Name
APP invert

HOSTS
# Hosts #Procs Arch  Cost
glen-ellyn.iit.edu  1 sun4  1
aurora.iit.edu  1 sun4  1
joliet.iit.edu  1 sun4  1
bonnie.mcs.anl.gov 128 sp1  sun4*0.5

FOLDERS
# Folder Location at
0 glen-ellyn.iit.edu
1 aurora.iit.edu
2 joliet.iit.edu
3-8 bonnie.mcs.anl.gov

PROCESSES
#Proc Directory Located at
0 boss glen-ellyn.iit.edu
1 worker1 aurora.iit.edu
2 worker1 joliet.iit.edu
3-22 worker2 bonnie.mcs.anl.gov

PPC
# Point-to-Point Connection with cost
glen-ellyn.iit.edu <-> aurora.iit.edu 1
glen-ellyn.iit.edu <-> joliet.iit.edu 1
glen-ellyn.iit.edu <-> bonnie.mcs.anl.gov 2
)";

TEST(AdfTest, ParsesThePaperExample) {
  auto parsed = ParseAdf(kInvertAdf);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const AppDescription& adf = parsed->description;

  EXPECT_EQ(adf.app_name, "invert");
  ASSERT_EQ(adf.hosts.size(), 4u);
  EXPECT_EQ(adf.hosts[0].name, "glen-ellyn.iit.edu");
  EXPECT_EQ(adf.hosts[0].processors, 1);
  EXPECT_EQ(adf.hosts[0].arch, "sun4");
  EXPECT_DOUBLE_EQ(adf.hosts[0].cost, 1.0);

  // "Notice that each individual processor on the SP-1 is less expensive
  // to use then a Sparc": sun4*0.5 resolves against sun4's cost of 1.
  EXPECT_EQ(adf.hosts[3].arch, "sp1");
  EXPECT_EQ(adf.hosts[3].processors, 128);
  EXPECT_DOUBLE_EQ(adf.hosts[3].cost, 0.5);

  // "3-8" expands to six folder servers; nine total.
  ASSERT_EQ(adf.folder_servers.size(), 9u);
  EXPECT_EQ(adf.folder_servers[3].id, 3);
  EXPECT_EQ(adf.folder_servers[8].id, 8);
  EXPECT_EQ(adf.folder_servers[8].host, "bonnie.mcs.anl.gov");

  // "3-22" expands to twenty worker processes; 23 total.
  ASSERT_EQ(adf.processes.size(), 23u);
  EXPECT_EQ(adf.processes[0].directory, "boss");
  EXPECT_EQ(adf.processes[22].directory, "worker2");

  ASSERT_EQ(adf.links.size(), 3u);
  EXPECT_TRUE(adf.links[0].duplex);
  EXPECT_DOUBLE_EQ(adf.links[2].cost, 2.0);

  EXPECT_TRUE(adf.Validate().ok());
  EXPECT_TRUE(parsed->present.app);
  EXPECT_TRUE(parsed->present.ppc);
}

TEST(AdfTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseAdf(
      "# leading comment\n\nAPP x # trailing words are comments\n"
      "HOSTS\nh 1 a 1  # inline comment\nFOLDERS\n0 h\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->description.app_name, "x");
  ASSERT_EQ(parsed->description.hosts.size(), 1u);
}

TEST(AdfTest, SimplexLink) {
  auto parsed = ParseAdf(
      "APP x\nHOSTS\na 1 t 1\nb 1 t 1\nFOLDERS\n0 a\nPPC\na -> b 3\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->description.links.size(), 1u);
  EXPECT_FALSE(parsed->description.links[0].duplex);
  EXPECT_DOUBLE_EQ(parsed->description.links[0].cost, 3.0);
}

TEST(AdfTest, CostExpressionChain) {
  // i486 refers to sun4 which refers to a literal; order of reference works
  // backwards through the file because resolution iterates to fixpoint.
  auto parsed = ParseAdf(
      "APP x\nHOSTS\n"
      "h1 1 sun4 2\n"
      "h2 1 i486 sun4*4\n"
      "h3 1 big i486*0.25\n"
      "FOLDERS\n0 h1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->description.hosts[1].cost, 8.0);
  EXPECT_DOUBLE_EQ(parsed->description.hosts[2].cost, 2.0);
}

TEST(AdfTest, CostDivision) {
  auto parsed = ParseAdf(
      "APP x\nHOSTS\nh1 1 sun4 2\nh2 1 y sun4/4\nFOLDERS\n0 h1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->description.hosts[1].cost, 0.5);
}

TEST(AdfTest, DivisionByZeroCostFails) {
  auto parsed = ParseAdf(
      "APP x\nHOSTS\nh1 1 zero 0\nh2 1 y zero/zero\nFOLDERS\n0 h1\n");
  // h2's cost divides by h1's zero cost: resolution must fail cleanly.
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdfTest, UnknownArchInCostFails) {
  auto parsed =
      ParseAdf("APP x\nHOSTS\nh1 1 a vax*2\nFOLDERS\n0 h1\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdfTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseAdf("APP\n").ok());                    // APP needs a name
  EXPECT_FALSE(ParseAdf("APP x\nHOSTS\nh 1 a\n").ok());    // missing cost
  EXPECT_FALSE(ParseAdf("APP x\nHOSTS\nh 0 a 1\n").ok());  // 0 processors
  EXPECT_FALSE(ParseAdf("stray data\n").ok());             // before sections
  EXPECT_FALSE(
      ParseAdf("APP x\nHOSTS\nh 1 a 1\nPPC\nh <> h 1\n").ok());  // bad arrow
  EXPECT_FALSE(
      ParseAdf("APP x\nFOLDERS\n8-3 h\n").ok());  // inverted range
}

TEST(AdfTest, ValidationCatchesDanglingReferences) {
  auto no_host = ParseAdf("APP x\nHOSTS\nh 1 a 1\nFOLDERS\n0 ghost\n");
  ASSERT_TRUE(no_host.ok());
  EXPECT_FALSE(no_host->description.Validate().ok());

  auto no_fs = ParseAdf("APP x\nHOSTS\nh 1 a 1\n");
  ASSERT_TRUE(no_fs.ok());
  EXPECT_FALSE(no_fs->description.Validate().ok());

  auto dup_fs = ParseAdf("APP x\nHOSTS\nh 1 a 1\nFOLDERS\n0 h\n0 h\n");
  ASSERT_TRUE(dup_fs.ok());
  EXPECT_FALSE(dup_fs->description.Validate().ok());

  auto ghost_link = ParseAdf(
      "APP x\nHOSTS\nh 1 a 1\nFOLDERS\n0 h\nPPC\nh <-> ghost 1\n");
  ASSERT_TRUE(ghost_link.ok());
  EXPECT_FALSE(ghost_link->description.Validate().ok());
}

TEST(AdfTest, MissingSectionsDefault) {
  // "Any section missing will default to the appropriate system ADF
  // section."
  auto parsed = ParseAdf("APP solo\n");
  ASSERT_TRUE(parsed.ok());
  AppDescription merged = MergeWithDefault(*parsed, SystemDefaultAdf());
  EXPECT_EQ(merged.app_name, "solo");       // user section kept
  ASSERT_EQ(merged.hosts.size(), 1u);       // defaulted
  EXPECT_EQ(merged.hosts[0].name, "localhost");
  EXPECT_EQ(merged.folder_servers.size(), 1u);
  EXPECT_TRUE(merged.Validate().ok());
}

TEST(AdfTest, PresentSectionsNotOverridden) {
  auto parsed = ParseAdf("APP y\nHOSTS\nmine 2 arch 1\nFOLDERS\n0 mine\n");
  ASSERT_TRUE(parsed.ok());
  AppDescription merged = MergeWithDefault(*parsed, SystemDefaultAdf());
  ASSERT_EQ(merged.hosts.size(), 1u);
  EXPECT_EQ(merged.hosts[0].name, "mine");
}

TEST(AdfTest, FormatParseRoundTrip) {
  auto parsed = ParseAdf(kInvertAdf);
  ASSERT_TRUE(parsed.ok());
  std::string formatted = FormatAdf(parsed->description);
  auto reparsed = ParseAdf(formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << formatted;
  const auto& a = parsed->description;
  const auto& b = reparsed->description;
  EXPECT_EQ(a.app_name, b.app_name);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].name, b.hosts[i].name);
    EXPECT_DOUBLE_EQ(a.hosts[i].cost, b.hosts[i].cost);
  }
  EXPECT_EQ(a.folder_servers.size(), b.folder_servers.size());
  EXPECT_EQ(a.processes.size(), b.processes.size());
  EXPECT_EQ(a.links.size(), b.links.size());
}

TEST(AdfTest, HelperLookups) {
  auto parsed = ParseAdf(kInvertAdf);
  ASSERT_TRUE(parsed.ok());
  const auto& adf = parsed->description;
  ASSERT_NE(adf.FindHost("joliet.iit.edu"), nullptr);
  EXPECT_EQ(adf.FindHost("nowhere"), nullptr);
  EXPECT_EQ(adf.FolderServersOn("bonnie.mcs.anl.gov").size(), 6u);
  EXPECT_EQ(adf.FolderServersOn("aurora.iit.edu").size(), 1u);
}

TEST(AdfTest, FileNotFound) {
  EXPECT_EQ(ParseAdfFile("/nonexistent/path.adf").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dmemo
