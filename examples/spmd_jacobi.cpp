// spmd_jacobi: Single Program, Multiple Data over the memo space.
//
// Sec. 4.3 notes the boss directory is optional "which will facilitate
// Single Program, Multiple Data (SPMD) applications better". Here every
// worker runs the same code: a 1-D Jacobi heat-diffusion solver where each
// worker owns a slab of the rod, exchanges boundary (ghost) values with its
// neighbours through folders keyed by (iteration, worker, side), and meets
// the others at a MemoBarrier each sweep. No boss exists; worker 0 merely
// prints the result at the end.
//
//   $ ./spmd_jacobi [cells] [workers] [iterations]
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "patterns/patterns.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

using namespace dmemo;

namespace {

struct Config {
  int cells;
  int workers;
  int iterations;
};

// Ghost-cell folder: {S=ghosts, X=[iteration, worker, side]}; side 0 = the
// worker's left boundary value, 1 = right. Each element is written once per
// iteration — future semantics, so readers block until neighbours publish.
Key GhostKey(Symbol ghosts, int iter, int worker, int side) {
  return Key(ghosts, {static_cast<std::uint32_t>(iter),
                      static_cast<std::uint32_t>(worker),
                      static_cast<std::uint32_t>(side)});
}

void Spmd(LocalSpacePtr space, Symbol ghosts, Symbol barrier_name,
          Config cfg, int rank, std::vector<double>* result_slab) {
  Memo memo = Memo::Local(space);
  MemoBarrier barrier(memo, barrier_name,
                      static_cast<std::uint32_t>(cfg.workers),
                      static_cast<std::uint32_t>(rank));

  // This worker's slab [lo, hi) of the rod, with fixed ends 1.0 and 0.0.
  const int per = cfg.cells / cfg.workers;
  const int lo = rank * per;
  const int hi = rank == cfg.workers - 1 ? cfg.cells : lo + per;
  std::vector<double> slab(static_cast<std::size_t>(hi - lo), 0.0);
  if (rank == 0) slab.front() = 1.0;
  if (rank == cfg.workers - 1) slab.back() = 0.0;

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Publish boundaries for the neighbours' next read.
    if (rank > 0) {
      memo.put(GhostKey(ghosts, iter, rank, 0), MakeFloat64(slab.front()))
          .ok();
    }
    if (rank < cfg.workers - 1) {
      memo.put(GhostKey(ghosts, iter, rank, 1), MakeFloat64(slab.back()))
          .ok();
    }
    // Read the neighbours' boundaries (blocking futures).
    double left = slab.front(), right = slab.back();
    if (rank > 0) {
      auto v = memo.get(GhostKey(ghosts, iter, rank - 1, 1));
      left = std::static_pointer_cast<TFloat64>(*v)->value();
    }
    if (rank < cfg.workers - 1) {
      auto v = memo.get(GhostKey(ghosts, iter, rank + 1, 0));
      right = std::static_pointer_cast<TFloat64>(*v)->value();
    }
    // Jacobi sweep over the slab (fixed global ends).
    std::vector<double> next = slab;
    for (int i = 0; i < static_cast<int>(slab.size()); ++i) {
      const int global = lo + i;
      if (global == 0 || global == cfg.cells - 1) continue;
      const double l = i == 0 ? left : slab[static_cast<std::size_t>(i - 1)];
      const double r = i == static_cast<int>(slab.size()) - 1
                           ? right
                           : slab[static_cast<std::size_t>(i + 1)];
      next[static_cast<std::size_t>(i)] = 0.5 * (l + r);
    }
    slab = std::move(next);
    // Everyone must finish iteration `iter` before anyone starts iter+1
    // (ghost folders are per-iteration, so this also bounds folder growth).
    if (!barrier.Arrive(static_cast<std::uint32_t>(iter)).ok()) return;
  }
  *result_slab = std::move(slab);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.cells = argc > 1 ? std::atoi(argv[1]) : 64;
  cfg.workers = argc > 2 ? std::atoi(argv[2]) : 4;
  cfg.iterations = argc > 3 ? std::atoi(argv[3]) : 2000;

  auto space = std::make_shared<LocalSpace>("jacobi");
  Memo memo = Memo::Local(space);
  Symbol ghosts = memo.symbol("ghosts");
  Symbol barrier = memo.symbol("barrier");

  std::vector<std::vector<double>> slabs(
      static_cast<std::size_t>(cfg.workers));
  std::vector<std::thread> workers;
  for (int rank = 0; rank < cfg.workers; ++rank) {
    workers.emplace_back(Spmd, space, ghosts, barrier, cfg, rank,
                         &slabs[static_cast<std::size_t>(rank)]);
  }
  for (auto& w : workers) w.join();

  // Steady state of the 1-D Laplace problem is the linear ramp 1 -> 0.
  std::vector<double> rod;
  for (const auto& slab : slabs) rod.insert(rod.end(), slab.begin(), slab.end());
  double max_err = 0;
  for (int i = 0; i < cfg.cells; ++i) {
    const double expected = 1.0 - static_cast<double>(i) / (cfg.cells - 1);
    max_err = std::max(max_err,
                       std::abs(rod[static_cast<std::size_t>(i)] - expected));
  }
  std::printf("jacobi: %d cells / %d SPMD workers / %d sweeps, "
              "max deviation from the analytic ramp: %.2e %s\n",
              cfg.cells, cfg.workers, cfg.iterations, max_err,
              max_err < 1e-2 ? "(converged)" : "(not yet converged)");

  // A little profile plot.
  std::printf("profile: ");
  for (int i = 0; i < cfg.cells; i += std::max(1, cfg.cells / 32)) {
    std::printf("%c", "0123456789"[static_cast<int>(
                          rod[static_cast<std::size_t>(i)] * 9.999)]);
  }
  std::printf("\n");
  return max_err < 1e-2 ? 0 : 1;
}
