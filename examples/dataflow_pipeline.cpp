// dataflow_pipeline: Lucid-style dataflow on the memo space (Sec. 2 and
// 6.3.3).
//
// Builds a dataflow network that computes a polynomial evaluation tree and a
// running statistics pipeline. Nothing executes until operands arrive;
// put_delayed triggers carry readiness, so independent subtrees evaluate in
// parallel on the worker pool.
//
//   $ ./dataflow_pipeline
#include <cstdio>

#include "lang/dataflow.h"
#include "transferable/scalars.h"

using namespace dmemo;

namespace {

double NumOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TFloat64>(v)->value();
}

DataflowOp Binary(double (*fn)(double, double)) {
  return [fn](std::span<const TransferablePtr> args)
             -> Result<TransferablePtr> {
    return MakeFloat64(fn(NumOf(args[0]), NumOf(args[1])));
  };
}

}  // namespace

int main() {
  auto space = std::make_shared<LocalSpace>("dataflow-pipeline");
  Memo memo = Memo::Local(space);

  // --- a Horner evaluation tree:  p(x) = ((2x + 3)x + 5)x + 7 --------------
  DataflowGraph graph(memo);
  NodeId x = graph.AddInput();
  auto add = Binary([](double a, double b) { return a + b; });
  auto mul = Binary([](double a, double b) { return a * b; });
  auto constant = [&](double v) {
    return graph.AddNode(
        [v](std::span<const TransferablePtr>) -> Result<TransferablePtr> {
          return MakeFloat64(v);
        },
        {});
  };
  NodeId c2 = constant(2), c3 = constant(3), c5 = constant(5),
         c7 = constant(7);
  NodeId t1 = graph.AddNode(mul, {c2, x});    // 2x
  NodeId t2 = graph.AddNode(add, {t1, c3});   // 2x+3
  NodeId t3 = graph.AddNode(mul, {t2, x});    // (2x+3)x
  NodeId t4 = graph.AddNode(add, {t3, c5});   // (2x+3)x+5
  NodeId t5 = graph.AddNode(mul, {t4, x});    // ((2x+3)x+5)x
  NodeId p = graph.AddNode(add, {t5, c7});    // p(x)

  // --- a parallel statistics stage over the same input ----------------------
  NodeId square = graph.AddNode(mul, {x, x});
  NodeId cube = graph.AddNode(mul, {square, x});

  if (!graph.Start(4).ok()) return 1;
  const double x_value = 2.5;
  graph.Feed(x, MakeFloat64(x_value)).ok();

  auto poly = graph.Await(p);
  auto sq = graph.Await(square);
  auto cb = graph.Await(cube);
  if (!poly.ok() || !sq.ok() || !cb.ok()) {
    std::fprintf(stderr, "dataflow failed\n");
    return 1;
  }
  const double expected = ((2 * x_value + 3) * x_value + 5) * x_value + 7;
  std::printf("p(%.2f)   = %.4f (expected %.4f)\n", x_value, NumOf(*poly),
              expected);
  std::printf("x^2       = %.4f\n", NumOf(*sq));
  std::printf("x^3       = %.4f\n", NumOf(*cb));
  std::printf("nodes fired: %llu (constants + operators, each exactly once)\n",
              static_cast<unsigned long long>(graph.nodes_fired()));

  // --- demand-driven behaviour, shown explicitly ----------------------------
  DataflowGraph lazy(memo);
  NodeId a = lazy.AddInput();
  NodeId b = lazy.AddInput();
  NodeId sum = lazy.AddNode(add, {a, b});
  lazy.Start(2).ok();
  lazy.Feed(a, MakeFloat64(1)).ok();
  std::printf("\nwith only one operand fed, fired = %llu (nothing runs)\n",
              static_cast<unsigned long long>(lazy.nodes_fired()));
  lazy.Feed(b, MakeFloat64(2)).ok();
  lazy.Await(sum).ok();
  std::printf("after the second operand,   fired = %llu\n",
              static_cast<unsigned long long>(lazy.nodes_fired()));
  return NumOf(*poly) == expected ? 0 : 1;
}
