// lucid_streams: the Lucid embedding (paper Sec. 2 — the authors built
// Lucid on top of the Memo API; ref. [5] is their demand-driven Lucid).
//
// Classic stream equations evaluated demand-driven over the memo space:
//   nat   = 0 fby nat + 1
//   fib   = 0 fby (1 fby (fib + next fib))
//   total = x fby (total + next x)        (running sum of an input)
//   evens = nat whenever (nat mod 2 == 0)
//
//   $ ./lucid_streams
#include <cstdio>

#include "lang/lucid.h"

using namespace dmemo;

namespace {

void PrintStream(const char* name, LucidProgram& p, StreamId s, int n) {
  auto vs = p.Take(s, static_cast<std::uint32_t>(n));
  if (!vs.ok()) {
    std::printf("%-7s <error: %s>\n", name, vs.status().ToString().c_str());
    return;
  }
  std::printf("%-7s= ", name);
  for (const auto& v : *vs) {
    std::printf("%lld ",
                static_cast<long long>(
                    std::static_pointer_cast<TInt64>(v)->value()));
  }
  std::printf("...\n");
}

}  // namespace

int main() {
  auto space = std::make_shared<LocalSpace>("lucid-example");
  Memo memo = Memo::Local(space);
  LucidProgram p(memo);

  // nat = 0 fby nat + 1
  StreamId nat = p.Forward();
  StreamId one = p.Constant(MakeInt64(1));
  p.Bind(nat, p.Fby(p.Constant(MakeInt64(0)), p.Map(AddFn(), {nat, one})))
      .ok();
  PrintStream("nat", p, nat, 10);

  // fib = 0 fby (1 fby (fib + next fib))
  StreamId fib = p.Forward();
  StreamId sum = p.Map(AddFn(), {fib, p.Next(fib)});
  p.Bind(fib, p.Fby(p.Constant(MakeInt64(0)),
                    p.Fby(p.Constant(MakeInt64(1)), sum)))
      .ok();
  PrintStream("fib", p, fib, 12);

  // squares = nat * nat
  PrintStream("squares", p, p.Map(MulFn(), {nat, nat}), 10);

  // evens = nat whenever even(nat): filtering with compaction.
  StreamId evens = p.Whenever(
      nat, p.Map(IntPredicateFn([](std::int64_t v) { return v % 2 == 0; }),
                 {nat}));
  PrintStream("evens", p, evens, 8);

  // A stream fed from outside: running total of measurements.
  StreamId x = p.Input();
  StreamId total = p.Forward();
  p.Bind(total, p.Fby(x, p.Map(AddFn(), {total, p.Next(x)}))).ok();
  const std::int64_t measurements[] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (std::uint32_t i = 0; i < 8; ++i) {
    p.Feed(x, i, MakeInt64(measurements[i])).ok();
  }
  PrintStream("total", p, total, 8);

  std::printf("cells computed: %llu (each element exactly once, on demand)\n",
              static_cast<unsigned long long>(p.cells_computed()));
  return 0;
}
