// Quickstart: the D-Memo API in five minutes.
//
// Demonstrates the Sec. 6 primitives on an in-process memo space: folders
// as unordered queues, blocking gets, copies, alternatives, the dataflow
// trigger, and the implicit-lock shared-record idiom.
//
//   $ ./quickstart
#include <cstdio>
#include <thread>

#include "core/memo.h"
#include "transferable/scalars.h"

using namespace dmemo;

int main() {
  // One shared memo space; each "process" gets its own Memo handle.
  auto space = std::make_shared<LocalSpace>("quickstart");
  Memo memo = Memo::Local(space);

  // --- put / get: folders are created on first use -------------------------
  Key inbox = Key::Named("inbox");
  memo.put(inbox, MakeString("hello, folders")).ok();
  auto greeting = memo.get(inbox);
  std::printf("got: %s\n",
              std::static_pointer_cast<TString>(*greeting)->value().c_str());

  // --- blocking get: a consumer waits until a producer deposits ------------
  Key handoff = Key::Named("handoff");
  std::thread producer([&] {
    Memo p = Memo::Local(space);
    p.put(handoff, MakeInt32(42)).ok();
  });
  auto value = memo.get(handoff);  // blocks until the producer runs
  producer.join();
  std::printf("handoff delivered: %d\n",
              std::static_pointer_cast<TInt32>(*value)->value());

  // --- get_copy: examine without extracting --------------------------------
  Key config = Key::Named("config");
  memo.put(config, MakeFloat64(3.14)).ok();
  auto copy1 = memo.get_copy(config);
  auto copy2 = memo.get_copy(config);  // still there
  std::printf("config readable twice: %.2f %.2f (count=%llu)\n",
              std::static_pointer_cast<TFloat64>(*copy1)->value(),
              std::static_pointer_cast<TFloat64>(*copy2)->value(),
              static_cast<unsigned long long>(*memo.count(config)));

  // --- get_alt: wait on several folders at once -----------------------------
  std::vector<Key> jars{Key::Named("my-jar"), Key::Named("common-jar")};
  memo.put(jars[1], MakeString("task-from-common-jar")).ok();
  auto task = memo.get_alt(jars);
  std::printf("get_alt picked folder %s\n",
              task->first == jars[1] ? "common-jar" : "my-jar");

  // --- put_delayed: the dataflow trigger (Sec. 6.3.3) -----------------------
  Key future = Key::Named("future");
  Key job_jar = Key::Named("job-jar");
  memo.put_delayed(future, job_jar, MakeString("run-consumer")).ok();
  std::printf("before the future is set, the jar holds %llu memos\n",
              static_cast<unsigned long long>(*memo.count(job_jar)));
  memo.put(future, MakeInt32(7)).ok();  // setting the future fires the trigger
  std::printf("after, it holds %llu: ",
              static_cast<unsigned long long>(*memo.count(job_jar)));
  auto op = memo.get(job_jar);
  std::printf("'%s'\n",
              std::static_pointer_cast<TString>(*op)->value().c_str());

  // --- shared record: implicit locking (Sec. 6.3.1) --------------------------
  Key counter = Key::Named("counter");
  memo.put(counter, MakeInt32(0)).ok();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&space] {
      Memo m = Memo::Local(space);
      Key c = Key::Named("counter");
      for (int i = 0; i < 1000; ++i) {
        auto v = m.get(c);  // record checked out: folder empty = locked
        m.put(c, MakeInt32(
                     std::static_pointer_cast<TInt32>(*v)->value() + 1))
            .ok();
      }
    });
  }
  for (auto& w : workers) w.join();
  auto total = memo.get(counter);
  std::printf("4 workers x 1000 implicit-lock increments = %d\n",
              std::static_pointer_cast<TInt32>(*total)->value());
  return 0;
}
