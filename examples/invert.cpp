// invert: the application named in the paper's ADF example (Sec. 4.3).
//
// Boss/worker matrix inversion by Gauss-Jordan elimination over the memo
// space, deployed on the paper's own four-machine topology: three sun4
// Sparcs and the 128-processor SP-1, star-connected through glen-ellyn with
// a costlier link to the SP-1. The cluster runs in-process, but every byte
// crosses the real server/routing/wire path.
//
// The boss deposits matrix rows as memos, drops one "pivot task" per
// elimination step in a job jar, and workers race to grab row-elimination
// tasks — the host-node paradigm of Sec. 4.2 with medium grain size.
//
//   $ ./invert [N]
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "patterns/patterns.h"
#include "runtime/cluster.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

using namespace dmemo;

namespace {

// The Sec. 4.3 example ADF, hostnames abbreviated.
constexpr const char* kInvertAdf = R"(# Application Name
APP invert
HOSTS
# Hosts            #Procs Arch Cost
glen-ellyn.iit.edu  1     sun4 1
aurora.iit.edu      1     sun4 1
joliet.iit.edu      1     sun4 1
bonnie.mcs.anl.gov  128   sp1  sun4*0.5
FOLDERS
0 glen-ellyn.iit.edu
1 aurora.iit.edu
2 joliet.iit.edu
3-8 bonnie.mcs.anl.gov
PPC
glen-ellyn.iit.edu <-> aurora.iit.edu 1
glen-ellyn.iit.edu <-> joliet.iit.edu 1
glen-ellyn.iit.edu <-> bonnie.mcs.anl.gov 2
)";

std::vector<double> RowOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TVecFloat64>(v)->values();
}

// One worker process: grab (pivot, row) elimination tasks until poisoned.
void Worker(Memo memo, int n) {
  JobJar jar(memo, Key::Named("tasks"));
  Key row_space = Key::Named("rows");
  for (;;) {
    auto task = jar.TakeTask();
    if (!task.ok()) return;
    auto rec = std::static_pointer_cast<TRecord>(*task);
    const int pivot =
        std::static_pointer_cast<TInt32>(rec->Get("pivot"))->value();
    if (pivot < 0) return;  // poison
    const int row =
        std::static_pointer_cast<TInt32>(rec->Get("row"))->value();

    // Fetch the (already normalized) pivot row without consuming it, check
    // out the target row exclusively, eliminate, put it back.
    Key pivot_key(row_space.S, {static_cast<std::uint32_t>(pivot)});
    Key row_key(row_space.S, {static_cast<std::uint32_t>(row)});
    auto pivot_row = RowOf(*memo.get_copy(pivot_key));
    auto target = RowOf(*memo.get(row_key));
    const double factor = target[static_cast<std::size_t>(pivot)];
    for (int j = 0; j < 2 * n; ++j) {
      target[static_cast<std::size_t>(j)] -=
          factor * pivot_row[static_cast<std::size_t>(j)];
    }
    memo.put(row_key, MakeVecFloat64(std::move(target))).ok();
    memo.put(Key::Named("done"), MakeInt32(row)).ok();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  auto parsed = ParseAdf(kInvertAdf);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad ADF: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto cluster = Cluster::Start(parsed->description);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }

  // Boss on glen-ellyn; one worker per other machine (the SP-1 gets four —
  // a token of its 128 processors without drowning a laptop).
  Memo boss = *(*cluster)->Client("glen-ellyn.iit.edu");
  std::vector<std::thread> workers;
  auto spawn_worker = [&](const std::string& host) {
    Memo m = *(*cluster)->Client(host, MachineProfile::Universal());
    workers.emplace_back(Worker, std::move(m), n);
  };
  spawn_worker("aurora.iit.edu");
  spawn_worker("joliet.iit.edu");
  for (int i = 0; i < 4; ++i) spawn_worker("bonnie.mcs.anl.gov");

  // Build a well-conditioned test matrix A and the augmented [A | I].
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i == j) ? n + 1.0 : 1.0 / (1.0 + std::abs(i - j));
    }
  }
  Key row_space = Key::Named("rows");
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<std::size_t>(2 * n), 0.0);
    for (int j = 0; j < n; ++j) {
      row[static_cast<std::size_t>(j)] =
          a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
    row[static_cast<std::size_t>(n + i)] = 1.0;
    boss.put(Key(row_space.S, {static_cast<std::uint32_t>(i)}),
             MakeVecFloat64(std::move(row)))
        .ok();
  }

  // Gauss-Jordan: for each pivot, the boss normalizes the pivot row, then
  // farms out the other n-1 eliminations in parallel.
  JobJar jar(boss, Key::Named("tasks"));
  for (int pivot = 0; pivot < n; ++pivot) {
    Key pivot_key(row_space.S, {static_cast<std::uint32_t>(pivot)});
    auto row = RowOf(*boss.get(pivot_key));
    const double d = row[static_cast<std::size_t>(pivot)];
    for (double& x : row) x /= d;
    boss.put(pivot_key, MakeVecFloat64(std::move(row))).ok();

    int outstanding = 0;
    for (int r = 0; r < n; ++r) {
      if (r == pivot) continue;
      auto task = std::make_shared<TRecord>();
      task->Set("pivot", MakeInt32(pivot));
      task->Set("row", MakeInt32(r));
      jar.Drop(task).ok();
      ++outstanding;
    }
    for (int i = 0; i < outstanding; ++i) {
      boss.get(Key::Named("done")).ok();
    }
  }

  // Poison the workers.
  for (std::size_t w = 0; w < workers.size(); ++w) {
    auto poison = std::make_shared<TRecord>();
    poison->Set("pivot", MakeInt32(-1));
    poison->Set("row", MakeInt32(-1));
    jar.Drop(poison).ok();
  }
  for (auto& w : workers) w.join();

  // Verify: A * A^-1 == I.
  std::vector<std::vector<double>> inv(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    auto row =
        RowOf(*boss.get(Key(row_space.S, {static_cast<std::uint32_t>(i)})));
    for (int j = 0; j < n; ++j) {
      inv[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          row[static_cast<std::size_t>(n + j)];
    }
  }
  double max_err = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = 0;
      for (int k = 0; k < n; ++k) {
        dot += a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] *
               inv[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
      }
      max_err = std::max(max_err, std::abs(dot - (i == j ? 1.0 : 0.0)));
    }
  }
  std::printf("invert: %dx%d matrix inverted across 4 machines, "
              "max |A*inv(A) - I| = %.2e %s\n",
              n, n, max_err, max_err < 1e-8 ? "(OK)" : "(FAILED)");

  // Show where the folder traffic went: the cost-weighted hashing sends
  // most rows to the SP-1's six folder servers (Sec. 5).
  for (const auto& host : (*cluster)->adf().hosts) {
    auto& server = (*cluster)->server(host.name);
    std::uint64_t served = 0;
    for (int id : server.folder_server_ids()) {
      served += server.folder_server(id)->requests_served();
    }
    std::printf("  %-22s folder requests served: %llu\n", host.name.c_str(),
                static_cast<unsigned long long>(served));
  }
  return max_err < 1e-8 ? 0 : 1;
}
