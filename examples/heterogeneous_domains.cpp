// heterogeneous_domains: lossless data-domain mapping between unequal
// machines (Sec. 3.1.3).
//
// Recreates the paper's example — "an Alpha processor (64-bit) sends an
// integer to an Intel 80486 (16-bit) and the value is greater than 16 bits"
// — on a two-machine cluster whose receiving client carries the i486
// profile. Also shows a self-referential structure crossing the wire intact
// and an actor conversation between the machines.
//
//   $ ./heterogeneous_domains
#include <cstdio>

#include "lang/actors.h"
#include "runtime/cluster.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

using namespace dmemo;

int main() {
  auto parsed = ParseAdf(
      "APP hetero\n"
      "HOSTS\nalpha.lab 1 alpha 1\npc.lab 1 i486 2\n"
      "FOLDERS\n0 alpha.lab\n1 pc.lab\n"
      "PPC\nalpha.lab <-> pc.lab 1\n");
  auto cluster = Cluster::Start(parsed->description);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  // Profiles come straight from the ADF arch labels.
  Memo alpha = *(*cluster)->Client("alpha.lab");
  Memo pc = *(*cluster)->Client("pc.lab");

  // --- the paper's lossy-mapping example ------------------------------------
  Key channel = Key::Named("alpha-to-pc");
  alpha.put(channel, MakeInt64(100'000)).ok();  // needs 17 bits
  auto refused = pc.get(channel);
  std::printf("pc.lab receiving int64 100000: %s\n",
              refused.status().ToString().c_str());

  alpha.put(channel, MakeInt64(12'345)).ok();  // fits 16 bits
  auto delivered = pc.get(channel);
  std::printf("pc.lab receiving int64 12345:  delivered (%lld)\n",
              static_cast<long long>(
                  std::static_pointer_cast<TInt64>(*delivered)->value()));

  // The same wide value delivered to a lenient client, logged not refused.
  Memo lenient =
      *(*cluster)->Client("pc.lab", ProfileI486(), /*strict_domains=*/false);
  alpha.put(channel, MakeInt64(100'000)).ok();
  auto tolerated = lenient.get(channel);
  std::printf("lenient pc.lab client:         delivered anyway (%lld)\n",
              static_cast<long long>(
                  std::static_pointer_cast<TInt64>(*tolerated)->value()));

  // --- arbitrary self-referential structures cross machines -----------------
  auto node = std::make_shared<TRecord>();
  node->Set("label", MakeString("cyclic-config"));
  node->Set("next", node);  // self-reference
  alpha.put(Key::Named("graph"), node).ok();
  auto got = pc.get(Key::Named("graph"));
  auto rec = std::static_pointer_cast<TRecord>(*got);
  std::printf("self-referential record arrived: label='%s', cycle %s\n",
              std::static_pointer_cast<TString>(rec->Get("label"))
                  ->value()
                  .c_str(),
              rec->Get("next").get() == rec.get() ? "intact" : "BROKEN");
  ReleaseGraph(rec);
  ReleaseGraph(node);

  // --- an actor conversation across the two machines -------------------------
  // The greeter runs on the alpha; the client sends from the pc. Mailboxes
  // are just folders, so location never appears in the code.
  ActorSystem actors(alpha, /*dispatchers=*/1);
  Behavior greeter;
  greeter.handlers["greet"] = [](ActorContext& ctx,
                                 const TransferablePtr& payload) {
    auto name = std::static_pointer_cast<TString>(payload)->value();
    ctx.Send("replies", "greeting", MakeString("hello, " + name)).ok();
  };
  Behavior collector;
  std::string received;
  collector.handlers["greeting"] = [&received](ActorContext&,
                                               const TransferablePtr& p) {
    received = std::static_pointer_cast<TString>(p)->value();
  };
  actors.Spawn("greeter", std::move(greeter)).ok();
  actors.Spawn("replies", std::move(collector)).ok();
  actors.Start().ok();
  actors.Send("greeter", "greet", MakeString("80486")).ok();
  actors.Drain().ok();
  std::printf("actor reply across machines:   '%s'\n", received.c_str());
  actors.Shutdown();
  return 0;
}
