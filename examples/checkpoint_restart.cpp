// checkpoint_restart: the persistent memo space surviving a "crash"
// (Sec. 3.1.3: "support for persistent data structures is essential to
// develop serious parallel software applications").
//
// Phase 1 starts a memo server with a persistence directory, loads a batch
// of work into a job jar, processes only part of it, and shuts the server
// down mid-job (the simulated crash — a snapshot is written).
// Phase 2 starts a *fresh* server over the same directory: the remaining
// tasks and all finished results are back, the workers drain what is left,
// and the final tally proves nothing was lost or duplicated.
//
//   $ ./checkpoint_restart
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "core/memo.h"
#include "core/remote_engine.h"
#include "server/memo_server.h"
#include "transferable/scalars.h"
#include "transport/simnet.h"

using namespace dmemo;

namespace {

constexpr int kTasks = 40;
constexpr int kPhaseOneTasks = 15;

AppDescription Adf() {
  auto parsed = ParseAdf("APP ckpt\nHOSTS\nnode 1 t 1\nFOLDERS\n0 node\n");
  return parsed->description;
}

std::unique_ptr<MemoServer> StartServer(SimNetworkPtr network,
                                        const std::string& persist_dir) {
  MemoServerOptions opts;
  opts.host = "node";
  opts.listen_url = "sim://node";
  opts.peers = {{"node", "sim://node"}};
  opts.persist_dir = persist_dir;
  auto server = MemoServer::Start(MakeSimTransport(network), opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    std::exit(1);
  }
  (*server)->RegisterApp(Adf()).ok();
  return std::move(*server);
}

Memo Client(SimNetworkPtr network) {
  RemoteEngineOptions opts;
  opts.app = "ckpt";
  opts.host = "node";
  auto engine =
      MakeRemoteEngine(MakeSimTransport(network), "sim://node", opts);
  return Memo(std::move(*engine));
}

int IntOf(const TransferablePtr& v) {
  return std::static_pointer_cast<TInt32>(v)->value();
}

}  // namespace

int main() {
  const std::string persist_dir =
      "/tmp/dmemo-ckpt-" + std::to_string(::getpid());
  ::mkdir(persist_dir.c_str(), 0755);

  // ---- phase 1: load the jar, process part of it, crash --------------------
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network, persist_dir);
    Memo memo = Client(network);
    for (int t = 0; t < kTasks; ++t) {
      memo.put(Key::Named("jar"), MakeInt32(t)).ok();
    }
    for (int done = 0; done < kPhaseOneTasks; ++done) {
      auto task = memo.get(Key::Named("jar"));
      memo.put(Key::Named("results"), MakeInt32(IntOf(*task) * IntOf(*task)))
          .ok();
    }
    std::printf("phase 1: %d of %d tasks done; jar holds %llu; "
                "simulating a crash (snapshot on shutdown)\n",
                kPhaseOneTasks, kTasks,
                static_cast<unsigned long long>(*memo.count(Key::Named("jar"))));
    server->Shutdown();  // snapshot written to persist_dir
  }

  // ---- phase 2: fresh server, same directory --------------------------------
  {
    auto network = std::make_shared<SimNetwork>();
    auto server = StartServer(network, persist_dir);
    Memo memo = Client(network);
    std::printf("phase 2: restarted; jar holds %llu, results hold %llu\n",
                static_cast<unsigned long long>(*memo.count(Key::Named("jar"))),
                static_cast<unsigned long long>(
                    *memo.count(Key::Named("results"))));
    // Drain the remaining tasks.
    for (;;) {
      auto task = memo.get_skip(Key::Named("jar"));
      if (!task->has_value()) break;
      memo.put(Key::Named("results"),
               MakeInt32(IntOf(**task) * IntOf(**task)))
          .ok();
    }
    // Tally: every task squared exactly once.
    long long sum = 0;
    int n = 0;
    for (;;) {
      auto r = memo.get_skip(Key::Named("results"));
      if (!r->has_value()) break;
      sum += IntOf(**r);
      ++n;
    }
    long long expected = 0;
    for (int t = 0; t < kTasks; ++t) expected += 1LL * t * t;
    std::printf("tally: %d results, sum %lld (expected %lld) — %s\n", n, sum,
                expected,
                (n == kTasks && sum == expected) ? "nothing lost, nothing"
                                                   " duplicated"
                                                 : "MISMATCH");
    server->Shutdown();
    (void)std::system(("rm -rf '" + persist_dir + "'").c_str());
    return (n == kTasks && sum == expected) ? 0 : 1;
  }
}
