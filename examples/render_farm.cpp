// render_farm: dynamic load balancing with a job jar on heterogeneous
// workers (Sec. 4.2 / 6.2.4).
//
// A Mandelbrot image is rendered row by row. Rows are tasks in a common job
// jar; workers of very different speeds (simulating a fast SP-1 node next
// to a slow 486) pull rows whenever they are free. Because the jar is
// shared, the fast worker naturally renders most rows and nobody idles —
// the decoupling the paper credits the directory-of-queues model with.
//
//   $ ./render_farm [width] [height]
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "patterns/patterns.h"
#include "runtime/cluster.h"
#include "transferable/composite.h"
#include "transferable/scalars.h"

using namespace dmemo;

namespace {

constexpr const char* kAdf = R"(APP renderfarm
HOSTS
fast.lab   1 sp1  0.25
medium.lab 1 sun4 1
slow.lab   1 i486 4
FOLDERS
0 fast.lab
1 medium.lab
2 slow.lab
PPC
fast.lab <-> medium.lab 1
medium.lab <-> slow.lab 1
fast.lab <-> slow.lab 2
)";

int MandelIterations(double cr, double ci, int limit) {
  double zr = 0, zi = 0;
  for (int i = 0; i < limit; ++i) {
    const double zr2 = zr * zr - zi * zi + cr;
    zi = 2 * zr * zi + ci;
    zr = zr2;
    if (zr * zr + zi * zi > 4.0) return i;
  }
  return limit;
}

// Renders rows from the jar; `slowdown` models processor speed by repeating
// the arithmetic (a deterministic busy-loop, not a sleep — slow machines
// burn real cycles).
void Worker(Memo memo, int width, int height, int slowdown,
            std::atomic<int>& rows_rendered) {
  JobJar jar(memo, Key::Named("rows"));
  Key results = Key::Named("rendered");
  for (;;) {
    auto task = jar.TakeTask();
    if (!task.ok()) return;
    const int y = std::static_pointer_cast<TInt32>(*task)->value();
    if (y < 0) return;  // poison

    std::vector<std::int32_t> row(static_cast<std::size_t>(width + 1));
    row[0] = y;
    for (int rep = 0; rep < slowdown; ++rep) {
      for (int x = 0; x < width; ++x) {
        const double cr = -2.0 + 3.0 * x / width;
        const double ci = -1.2 + 2.4 * y / height;
        row[static_cast<std::size_t>(x + 1)] =
            MandelIterations(cr, ci, 96);
      }
    }
    memo.put(results, MakeVecInt32(std::move(row))).ok();
    rows_rendered.fetch_add(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 72;
  const int height = argc > 2 ? std::atoi(argv[2]) : 24;

  auto parsed = ParseAdf(kAdf);
  auto cluster = Cluster::Start(parsed->description);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }

  Memo boss = *(*cluster)->Client("fast.lab", MachineProfile::Universal());
  JobJar jar(boss, Key::Named("rows"));
  for (int y = 0; y < height; ++y) {
    jar.Drop(MakeInt32(y)).ok();
  }

  // Heterogeneous workers: speed ratio 16 : 4 : 1.
  std::atomic<int> fast_rows{0}, medium_rows{0}, slow_rows{0};
  std::thread fast(Worker,
                   *(*cluster)->Client("fast.lab", MachineProfile::Universal()),
                   width, height, 1, std::ref(fast_rows));
  std::thread medium(
      Worker, *(*cluster)->Client("medium.lab", MachineProfile::Universal()),
      width, height, 4, std::ref(medium_rows));
  std::thread slow(Worker,
                   *(*cluster)->Client("slow.lab", MachineProfile::Universal()),
                   width, height, 16, std::ref(slow_rows));

  // Collect and assemble.
  std::vector<std::vector<std::int32_t>> image(
      static_cast<std::size_t>(height));
  Key results = Key::Named("rendered");
  for (int i = 0; i < height; ++i) {
    auto row = boss.get(results);
    auto values = std::static_pointer_cast<TVecInt32>(*row)->values();
    const int y = values[0];
    image[static_cast<std::size_t>(y)].assign(values.begin() + 1,
                                              values.end());
  }
  for (int i = 0; i < 3; ++i) jar.Drop(MakeInt32(-1)).ok();  // poison
  fast.join();
  medium.join();
  slow.join();

  static const char kShades[] = " .:-=+*#%@";
  for (const auto& row : image) {
    std::string line;
    for (std::int32_t it : row) {
      line += kShades[std::min<std::int32_t>(it / 10, 9)];
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf(
      "\nrows rendered  fast(16x): %d   medium(4x): %d   slow(1x): %d\n",
      fast_rows.load(), medium_rows.load(), slow_rows.load());
  std::printf("the job jar balanced the load: nobody idled, the fast "
              "machine did the most work.\n");
  return 0;
}
