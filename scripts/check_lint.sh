#!/usr/bin/env bash
# Lint gate: clang-format (dry run) + clang-tidy over src/.
#
# Usage: scripts/check_lint.sh [build-dir]
# The build dir must contain compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Run from the repo root.
set -euo pipefail

build_dir="${1:-build}"

# Project-specific invariants (lock ranks, blocking-under-lock, protocol
# and registry drift, plus the zero-copy and WAL gates that used to be
# inline greps here) are checked by dmemo-analyze (tools/analyze). Build it
# if the build dir doesn't have it yet, then run it over the repo.
echo "check_lint: dmemo-analyze over src/ and the docs"
if [[ ! -x "$build_dir/tools/analyze/dmemo-analyze" ]]; then
  cmake --build "$build_dir" --target dmemo-analyze
fi
"$build_dir/tools/analyze/dmemo-analyze" --repo .

if ! command -v clang-format >/dev/null; then
  echo "check_lint: clang-format not found" >&2
  exit 2
fi
if ! command -v clang-tidy >/dev/null; then
  echo "check_lint: clang-tidy not found" >&2
  exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "check_lint: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(find src tests bench examples \
    \( -name '*.cc' -o -name '*.h' \) | sort)

echo "check_lint: clang-format over ${#sources[@]} files"
clang-format --dry-run -Werror "${sources[@]}"

# clang-tidy only sees translation units (headers are checked through their
# includers via HeaderFilterRegex in .clang-tidy).
mapfile -t tus < <(find src -name '*.cc' | sort)
echo "check_lint: clang-tidy over ${#tus[@]} translation units"
clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "${tus[@]}"

echo "check_lint: OK"
