#!/usr/bin/env bash
# Lint gate: clang-format (dry run) + clang-tidy over src/.
#
# Usage: scripts/check_lint.sh [build-dir]
# The build dir must contain compile_commands.json (configure with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Run from the repo root.
set -euo pipefail

build_dir="${1:-build}"

# Zero-copy gate: request/response payloads are IoBufs whose slices share
# the received buffer (DESIGN.md §11). A `Bytes x = req.value...`-style
# assignment or a Flatten() of a payload on the server/transport hot path
# reintroduces a deep copy per message — flag it before clang even runs.
echo "check_lint: zero-copy payload gate over src/server src/transport"
if grep -rnE \
    'Bytes [A-Za-z_]+ *= *[A-Za-z_]+(\.|->)value|value\.Flatten\(\)' \
    src/server src/transport; then
  echo "check_lint: payload copied into Bytes on the hot path;" \
       "keep it an IoBuf (or justify with a counted IoBuf copy point)" >&2
  exit 1
fi

# WAL gate: every directory mutation in the folder server must go through
# the write-ahead log (DESIGN.md "Durability & liveness") — an unlogged
# Put/Get is a memo that silently vanishes or doubles after a crash. Each
# legitimate apply site carries a `wal:applied` marker on the same line;
# GetCopy/Count/Keys are non-mutating and exempt.
echo "check_lint: WAL mutation gate over src/server/folder_server.cc"
if grep -nE \
    'directory_\.(Put|PutDelayed|Get|GetFor|GetSkip|GetAlt|GetAltFor|GetAltSkip|TakeEqual)\(' \
    src/server/folder_server.cc | grep -v 'wal:applied'; then
  echo "check_lint: unlogged directory mutation in folder_server.cc;" \
       "route it through LoggedPut/LogExtraction (or mark the apply site" \
       "with // wal:applied)" >&2
  exit 1
fi

if ! command -v clang-format >/dev/null; then
  echo "check_lint: clang-format not found" >&2
  exit 2
fi
if ! command -v clang-tidy >/dev/null; then
  echo "check_lint: clang-tidy not found" >&2
  exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "check_lint: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(find src tests bench examples \
    \( -name '*.cc' -o -name '*.h' \) | sort)

echo "check_lint: clang-format over ${#sources[@]} files"
clang-format --dry-run -Werror "${sources[@]}"

# clang-tidy only sees translation units (headers are checked through their
# includers via HeaderFilterRegex in .clang-tidy).
mapfile -t tus < <(find src -name '*.cc' | sort)
echo "check_lint: clang-tidy over ${#tus[@]} translation units"
clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' "${tus[@]}"

echo "check_lint: OK"
