#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and gate on latency regressions.

    bench_compare.py BASELINE CURRENT [--threshold 0.20] [--min-us 50]

Phases are paired by name. For open-loop phases the gated number is the
intended-start p99; for closed-loop phases (all intended-start fields zero)
it is real_time_per_iter_us from `extra`. A phase regresses when the
current value exceeds baseline * (1 + threshold); sub---min-us values are
ignored outright (both sides under the floor), since at single-digit
microseconds scheduler noise on a shared CI box swamps any real signal.

Exit status: 0 = within threshold (improvements included), 1 = regression,
2 = usage / malformed report. New phases (no baseline counterpart) and
removed phases are reported but never fail the gate — the trajectory is
append-friendly.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema_version") != 1:
        sys.exit(f"bench_compare: {path}: unsupported schema_version "
                 f"{doc.get('schema_version')!r}")
    return doc


def gated_value(phase):
    """(metric-name, value-in-us) for the number this phase is gated on."""
    p99 = phase.get("p99_us", 0)
    if p99 > 0:
        return "p99_us", float(p99)
    per_iter = phase.get("extra", {}).get("real_time_per_iter_us", 0.0)
    return "real_time_per_iter_us", float(per_iter)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed relative regression (default 0.20 = 20%%)")
    ap.add_argument("--min-us", type=float, default=50.0,
                    help="ignore phases where both values are below this")
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    base_phases = {p["name"]: p for p in base.get("phases", [])}
    curr_phases = {p["name"]: p for p in curr.get("phases", [])}

    print(f"baseline {base.get('git_sha', '?')[:12]}  "
          f"current {curr.get('git_sha', '?')[:12]}  "
          f"threshold {args.threshold:.0%}")

    failed = []
    for name, curr_phase in curr_phases.items():
        base_phase = base_phases.get(name)
        if base_phase is None:
            print(f"  NEW     {name}: no baseline, not gated")
            continue
        metric, base_v = gated_value(base_phase)
        curr_metric, curr_v = gated_value(curr_phase)
        if metric != curr_metric:
            print(f"  SKIP    {name}: baseline gates {metric}, "
                  f"current gates {curr_metric}")
            continue
        if base_v < args.min_us and curr_v < args.min_us:
            print(f"  NOISE   {name}: {metric} {base_v:.1f} -> {curr_v:.1f} us"
                  f" (both under {args.min_us:.0f} us floor)")
            continue
        if base_v <= 0:
            print(f"  SKIP    {name}: baseline {metric} is 0")
            continue
        ratio = curr_v / base_v
        verdict = "OK" if ratio <= 1 + args.threshold else "REGRESSED"
        print(f"  {verdict:7} {name}: {metric} {base_v:.1f} -> {curr_v:.1f} us"
              f"  ({ratio - 1:+.1%})")
        if verdict == "REGRESSED":
            failed.append(name)

    for name in base_phases:
        if name not in curr_phases:
            print(f"  GONE    {name}: present in baseline only")

    if failed:
        print(f"bench_compare: FAILED — {len(failed)} phase(s) regressed "
              f"beyond {args.threshold:.0%}: {', '.join(failed)}")
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
